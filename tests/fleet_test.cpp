// Shore-side fleet tier tests: FleetServer fusion, liveness, the
// comparative baseline, disorder-equivalence of the published view, and
// the assembled two-tier FleetSim.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "mpros/common/rng.hpp"
#include "mpros/fleet/fleet_server.hpp"
#include "mpros/fleet/fleet_sim.hpp"
#include "mpros/net/fleet_summary.hpp"

namespace mpros::fleet {
namespace {

using domain::FailureMode;

/// A deterministic summary for hull `ship` at cadence step `seq`: two
/// machines whose health decays with the step, so later summaries always
/// differ from earlier ones.
net::FleetSummary make_summary(std::uint64_t ship, std::uint64_t seq) {
  net::FleetSummary s;
  s.ship = ShipId(ship);
  s.ship_name = "Hull-" + std::to_string(ship);
  s.timestamp = SimTime::from_seconds(600.0 * static_cast<double>(seq));
  s.dcs_alive = 2;
  s.quarantine_active = static_cast<std::uint32_t>(ship % 2);
  s.quarantine_total = seq;

  net::MachineHealthSummary motor;
  motor.machine = ObjectId(ship * 100 + 1);
  motor.name = "Motor " + std::to_string(ship);
  motor.klass = "motor";
  motor.health = 1.0 - 0.01 * static_cast<double>(ship + seq);
  motor.has_diagnosis = true;
  motor.top_mode = FailureMode::MotorImbalance;
  motor.top_belief = 0.5 + 0.01 * static_cast<double>(seq);
  motor.top_severity = 0.4;
  motor.priority = motor.top_belief * motor.top_severity;
  motor.report_count = static_cast<std::uint32_t>(seq);
  s.machines.push_back(motor);

  net::MachineHealthSummary pump;
  pump.machine = ObjectId(ship * 100 + 2);
  pump.name = "Pump " + std::to_string(ship);
  pump.klass = "pump";
  pump.health = 0.99;
  s.machines.push_back(pump);
  return s;
}

net::FleetSummaryEnvelope make_envelope(std::uint64_t ship,
                                        std::uint64_t seq) {
  net::FleetSummaryEnvelope env;
  env.ship = ShipId(ship);
  env.sequence = seq;
  env.summary = make_summary(ship, seq);
  return env;
}

TEST(FleetServerTest, WatchdogDegradesSilentShipsAndRecovers) {
  FleetServerConfig cfg;
  cfg.summary_interval = SimTime::from_seconds(600);
  cfg.stale_after_missed = 2;
  cfg.lost_after_missed = 4;
  FleetServer server(cfg);
  server.expect_ship(ShipId(1), "Hull-1", SimTime(0));
  server.expect_ship(ShipId(2), "Hull-2", SimTime(0));

  (void)server.accept(make_envelope(1, 1), SimTime::from_seconds(600));
  (void)server.accept(make_envelope(2, 1), SimTime::from_seconds(600));
  server.publish(SimTime::from_seconds(700));
  EXPECT_EQ(server.ship_liveness(ShipId(1)), ShipLiveness::Alive);

  // Hull 2 goes silent: two missed intervals -> Stale, four -> Lost.
  (void)server.accept(make_envelope(1, 2), SimTime::from_seconds(1800));
  server.publish(SimTime::from_seconds(600 + 2 * 600 + 1));
  EXPECT_EQ(server.ship_liveness(ShipId(1)), ShipLiveness::Alive);
  EXPECT_EQ(server.ship_liveness(ShipId(2)), ShipLiveness::Stale);

  server.publish(SimTime::from_seconds(600 + 4 * 600 + 1));
  EXPECT_EQ(server.ship_liveness(ShipId(2)), ShipLiveness::Lost);
  {
    // By now hull 1 (last heard 1800 s) has itself slipped to Stale — the
    // watchdog judges every hull by the same clock.
    const auto snap = server.snapshot();
    EXPECT_EQ(snap->ships_stale, 1u);
    EXPECT_EQ(snap->ships_lost, 1u);
  }

  // Any datagram restores Alive — here a heartbeat, not a summary.
  net::HeartbeatMessage hb;
  hb.dc = DcId(2);
  hb.timestamp = SimTime::from_seconds(3300);
  hb.last_sequence = 1;
  server.accept(hb, SimTime::from_seconds(3300));
  EXPECT_EQ(server.ship_liveness(ShipId(2)), ShipLiveness::Alive);
  EXPECT_GE(server.stats().liveness_transitions, 3u);
  // stats_snapshot() is the canonical counter accessor (snapshot() being
  // the FleetSnapshot epoch); the older stats() name is a pinned shim.
  EXPECT_TRUE(server.stats() == server.stats_snapshot());
}

TEST(FleetServerTest, LatestSequenceWinsAndDuplicatesReAck) {
  FleetServer server;
  const SimTime t = SimTime::from_seconds(100);

  net::AckMessage ack = server.accept(make_envelope(1, 2), t);
  EXPECT_EQ(ack.cumulative, 0u);  // gap: sequence 1 still missing

  // An older sequence arrives late: it heals the stream (cumulative
  // advances) but must not regress the applied view.
  ack = server.accept(make_envelope(1, 1), t);
  EXPECT_EQ(ack.cumulative, 2u);
  {
    const auto stats = server.stats();
    EXPECT_EQ(stats.summaries_applied, 1u);
    EXPECT_EQ(stats.summaries_stale, 1u);
    EXPECT_EQ(stats.gaps_detected, 1u);
  }
  server.publish(t);
  ASSERT_EQ(server.snapshot()->ships.size(), 1u);
  EXPECT_EQ(server.snapshot()->ships[0].last_sequence, 2u);

  // A retransmitted duplicate is dropped but still re-acked.
  ack = server.accept(make_envelope(1, 2), t);
  EXPECT_EQ(ack.cumulative, 2u);
  EXPECT_EQ(server.stats().duplicates_dropped, 1u);
  EXPECT_EQ(server.cumulative(ShipId(1)), 2u);
}

TEST(FleetServerTest, ComparativeBaselineFlagsTheSickSister) {
  FleetServerConfig cfg;
  cfg.min_fleet = 3;
  FleetServer server(cfg);
  // Five hulls, one motor each; hull 3's motor is markedly sicker than the
  // class. No single hull could see that — the fleet baseline can.
  for (std::uint64_t ship = 1; ship <= 5; ++ship) {
    net::FleetSummary s;
    s.ship = ShipId(ship);
    s.ship_name = "Hull-" + std::to_string(ship);
    s.timestamp = SimTime::from_seconds(600);
    net::MachineHealthSummary m;
    m.machine = ObjectId(ship * 100 + 1);
    m.name = "Motor " + std::to_string(ship);
    m.klass = "motor";
    m.health = ship == 3 ? 0.42 : 0.95;
    s.machines.push_back(m);
    (void)server.accept(net::FleetSummaryEnvelope{ShipId(ship), 1, s},
                        SimTime::from_seconds(600));
  }
  server.publish(SimTime::from_seconds(700));
  const auto snap = server.snapshot();

  ASSERT_EQ(snap->outliers.size(), 1u);
  EXPECT_EQ(snap->outliers[0].ship.value(), 3u);
  EXPECT_EQ(snap->outliers[0].klass, "motor");
  EXPECT_LT(snap->outliers[0].robust_z, -3.0);
  EXPECT_NEAR(snap->outliers[0].fleet_median, 0.95, 1e-9);

  // The hull-level baseline flags the same ship as the divergent hull.
  const auto row = std::find_if(
      snap->ships.begin(), snap->ships.end(),
      [](const ShipStatus& s) { return s.ship.value() == 3; });
  ASSERT_NE(row, snap->ships.end());
  EXPECT_TRUE(row->outlier_hull);
  EXPECT_LT(row->fleet_z, 0.0);

  // The sick machine leads the cross-fleet maintenance view.
  ASSERT_FALSE(snap->items.empty());
  const auto& worst = *std::min_element(
      snap->items.begin(), snap->items.end(),
      [](const auto& a, const auto& b) { return a.health < b.health; });
  EXPECT_TRUE(worst.fleet_outlier);
  EXPECT_EQ(worst.ship.value(), 3u);
}

TEST(FleetServerTest, SmallClassesAreNeverCompared) {
  FleetServerConfig cfg;
  cfg.min_fleet = 3;
  FleetServer server(cfg);
  // Two hulls only: even a dramatic health gap must not produce an outlier
  // (a two-sample median comparison is noise, not a diagnosis).
  for (std::uint64_t ship = 1; ship <= 2; ++ship) {
    net::FleetSummary s;
    s.ship = ShipId(ship);
    s.timestamp = SimTime::from_seconds(600);
    net::MachineHealthSummary m;
    m.machine = ObjectId(ship);
    m.name = "Motor";
    m.klass = "motor";
    m.health = ship == 1 ? 0.2 : 1.0;
    s.machines.push_back(m);
    (void)server.accept(net::FleetSummaryEnvelope{ShipId(ship), 1, s},
                        SimTime::from_seconds(600));
  }
  server.publish(SimTime::from_seconds(700));
  EXPECT_TRUE(server.snapshot()->outliers.empty());
}

TEST(FleetServerTest, PublishedSnapshotsAreImmutable) {
  FleetServer server;
  (void)server.accept(make_envelope(1, 1), SimTime::from_seconds(10));
  server.publish(SimTime::from_seconds(10));
  const auto before = server.snapshot();
  const std::string rendered_before = FleetServer::render(*before);

  // New ingest and a new epoch must not disturb a held snapshot.
  (void)server.accept(make_envelope(1, 2), SimTime::from_seconds(20));
  (void)server.accept(make_envelope(2, 1), SimTime::from_seconds(20));
  server.publish(SimTime::from_seconds(20));

  EXPECT_EQ(FleetServer::render(*before), rendered_before);
  const auto after = server.snapshot();
  EXPECT_GT(after->epoch, before->epoch);
  EXPECT_EQ(after->ships.size(), 2u);
  EXPECT_EQ(before->ships.size(), 1u);
}

// ---------------------------------------------------------------------------
// Disorder equivalence: the rendered fleet view must be byte-identical
// whether the same summary set arrives in order, shuffled, duplicated, or
// through scripted outage windows with retransmissions (E9, one tier up).

constexpr std::uint64_t kShips = 4;
constexpr std::uint64_t kSeqs = 5;

std::vector<net::FleetSummaryEnvelope> scripted_set() {
  std::vector<net::FleetSummaryEnvelope> envs;
  for (std::uint64_t ship = 1; ship <= kShips; ++ship) {
    for (std::uint64_t seq = 1; seq <= kSeqs; ++seq) {
      envs.push_back(make_envelope(ship, seq));
    }
  }
  return envs;
}

/// Feed `envs` in the given order (arrival slot i at T0 + i seconds) and
/// return the rendered view at the common evaluation time.
std::string render_after(const std::vector<net::FleetSummaryEnvelope>& envs) {
  FleetServer server;
  for (std::uint64_t ship = 1; ship <= kShips; ++ship) {
    server.expect_ship(ShipId(ship), "Hull-" + std::to_string(ship),
                       SimTime::from_seconds(1000));
  }
  SimTime at = SimTime::from_seconds(1000);
  for (const auto& env : envs) {
    (void)server.accept(env, at);
    at += SimTime::from_seconds(1);
  }
  server.publish(SimTime::from_seconds(1200));
  return server.render_fleet_view();
}

class FleetDisorderTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FleetDisorderTest, RenderedViewIsArrivalOrderIndependent) {
  const auto baseline = render_after(scripted_set());

  // Seeded shuffle.
  auto shuffled = scripted_set();
  Rng rng(GetParam());
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[static_cast<std::size_t>(rng.integer(0, i - 1))]);
  }
  EXPECT_EQ(render_after(shuffled), baseline) << "shuffle diverged";

  // Every envelope delivered twice (retransmission storm).
  std::vector<net::FleetSummaryEnvelope> doubled;
  for (const auto& env : shuffled) {
    doubled.push_back(env);
    doubled.push_back(env);
  }
  EXPECT_EQ(render_after(doubled), baseline) << "duplication diverged";
}

TEST_P(FleetDisorderTest, ScriptedOutageWindowsConvergeToSameView) {
  const auto baseline = render_after(scripted_set());

  // Same set through a real SimNetwork: jitter reorders, an outage window
  // eats the first transmission wave, and a blind re-send (the sender's
  // retransmission pass) delivers the survivors' duplicates.
  net::NetworkConfig net_cfg;
  net_cfg.seed = GetParam();
  net::SimNetwork shore(net_cfg);
  shore.schedule_outage({"fleet", SimTime::from_seconds(1000),
                         SimTime::from_seconds(1012), 1.0});

  FleetServer server;
  for (std::uint64_t ship = 1; ship <= kShips; ++ship) {
    server.expect_ship(ShipId(ship), "Hull-" + std::to_string(ship),
                       SimTime::from_seconds(1000));
  }
  server.attach_to_network(shore, "fleet");

  const auto envs = scripted_set();
  SimTime at = SimTime::from_seconds(1000);
  for (const auto& env : envs) {
    shore.send("hull-" + std::to_string(env.ship.value()), "fleet",
               net::wrap(env), at);
    at += SimTime::from_seconds(1);
  }
  // Retransmission pass after the window closes: everything again.
  at = SimTime::from_seconds(1050);
  for (const auto& env : envs) {
    shore.send("hull-" + std::to_string(env.ship.value()), "fleet",
               net::wrap(env), at);
    at += SimTime::from_seconds(1);
  }
  shore.advance_to(SimTime::from_seconds(1199));
  server.publish(SimTime::from_seconds(1200));

  EXPECT_EQ(server.render_fleet_view(), baseline);
  EXPECT_EQ(server.stats().malformed_dropped, 0u);
  EXPECT_GT(server.stats().duplicates_dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetDisorderTest,
                         ::testing::Values(0xA1u, 0xB2u, 0xC3u, 0xD4u,
                                           0xE5u));

// ---------------------------------------------------------------------------
// Wait-free reads: readers hammer snapshot() while one ingest thread
// applies summaries and publishes. TSan-clean by construction (readers
// share nothing with ingest but the atomic pointer).

TEST(FleetServerConcurrencyTest, ReadersNeverBlockOrTearDuringIngest) {
  FleetServer server;
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> reads{0};
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      std::shared_ptr<const FleetSnapshot> pinned = server.snapshot();
      while (!done.load(std::memory_order_relaxed)) {
        // The epoch gate is stored after the snapshot: once a reader sees
        // epoch E it must be able to load a snapshot at least that new.
        const std::uint64_t gate = server.published_epoch();
        const auto snap = server.snapshot();
        ASSERT_NE(snap, nullptr);
        ASSERT_GE(snap->epoch, gate);
        // Epochs only move forward, and a snapshot is always internally
        // consistent: the liveness tallies match the rows.
        ASSERT_GE(snap->epoch, last_epoch);
        last_epoch = snap->epoch;
        ASSERT_EQ(snap->ships_alive + snap->ships_stale + snap->ships_lost,
                  snap->ships.size());
        // The hot-path refresh idiom never regresses the pinned view.
        const std::uint64_t pinned_before = pinned->epoch;
        server.refresh(pinned);
        ASSERT_GE(pinned->epoch, pinned_before);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::uint64_t seq = 1; seq <= 200; ++seq) {
    const SimTime at = SimTime::from_seconds(static_cast<double>(seq));
    for (std::uint64_t ship = 1; ship <= 8; ++ship) {
      (void)server.accept(make_envelope(ship, seq), at);
    }
    server.publish(at);
  }
  // A loaded CI host can finish the whole 200-epoch burst before the reader
  // threads are first scheduled; hold the final state open until each
  // reader has sampled it at least once so the assertions actually ran.
  while (reads.load(std::memory_order_relaxed) <
         static_cast<std::uint64_t>(readers.size())) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(server.snapshot()->epoch, 200u);
}

// ---------------------------------------------------------------------------
// Chaos smoke: synthetic hull uplinks (real ReliableSenders) through a
// lossy shore link. CI cranks the knobs via MPROS_CHAOS_* without a
// rebuild; MPROS_CHAOS_SHIPS sets the fleet size.

TEST(FleetChaosSmokeTest, LossyUplinksConvergeUnderEnvironmentKnobs) {
  const char* ships_env = std::getenv("MPROS_CHAOS_SHIPS");
  const char* drop = std::getenv("MPROS_CHAOS_DROP");
  const char* dup = std::getenv("MPROS_CHAOS_DUP");
  const char* seed = std::getenv("MPROS_CHAOS_SEED");
  const std::uint64_t ship_count =
      ships_env ? std::strtoull(ships_env, nullptr, 0) : 8;

  net::NetworkConfig net_cfg;
  net_cfg.drop_probability = drop ? std::atof(drop) : 0.15;
  net_cfg.duplicate_probability = dup ? std::atof(dup) : 0.05;
  net_cfg.jitter = SimTime::from_seconds(2.0);
  net_cfg.seed = seed ? std::strtoull(seed, nullptr, 0) : 0xF1EE7;
  net::SimNetwork shore(net_cfg);

  FleetServer server;
  server.attach_to_network(shore, "fleet");

  // One reliable uplink per hull; acks come back to "hull-<k>". The RTO is
  // tightened so recovery fits the simulated window.
  net::ReliableConfig rel;
  rel.initial_rto = SimTime::from_seconds(30.0);
  rel.max_rto = SimTime::from_seconds(240.0);
  std::vector<std::unique_ptr<net::ReliableSender>> uplinks;
  for (std::uint64_t k = 1; k <= ship_count; ++k) {
    server.expect_ship(ShipId(k), "Hull-" + std::to_string(k), SimTime(0));
    uplinks.push_back(std::make_unique<net::ReliableSender>(DcId(k), rel));
    net::ReliableSender* sender = uplinks.back().get();
    shore.register_endpoint(
        "hull-" + std::to_string(k), [sender](const net::Message& msg) {
          const auto ack = net::try_unwrap_ack(msg.payload);
          if (ack.has_value()) sender->on_ack(*ack);
        });
  }

  const SimTime step = SimTime::from_seconds(60);
  const SimTime summary_period = SimTime::from_seconds(600);
  const SimTime end = SimTime::from_hours(4.0);
  SimTime next_summary = summary_period;
  for (SimTime now = step; now <= end; now += step) {
    if (now >= next_summary) {
      const std::uint64_t seq = static_cast<std::uint64_t>(
          next_summary.micros() / summary_period.micros());
      for (std::uint64_t k = 1; k <= ship_count; ++k) {
        shore.send("hull-" + std::to_string(k), "fleet",
                   uplinks[k - 1]->envelope(make_summary(k, seq), now), now);
      }
      next_summary += summary_period;
    }
    for (std::uint64_t k = 1; k <= ship_count; ++k) {
      for (auto& payload : uplinks[k - 1]->due_retransmits(now)) {
        shore.send("hull-" + std::to_string(k), "fleet", std::move(payload),
                   now);
      }
      const net::HeartbeatMessage hb{DcId(k), now,
                                     uplinks[k - 1]->last_sequence()};
      shore.send("hull-" + std::to_string(k), "fleet", net::wrap(hb), now);
    }
    shore.advance_to(now);
    server.publish(now);
  }

  // Despite the weather, every hull's stream must have converged: all
  // summaries applied (or superseded), nothing malformed, everyone Alive.
  const auto snap = server.snapshot();
  EXPECT_EQ(snap->ships.size(), ship_count);
  EXPECT_EQ(snap->ships_alive, ship_count);
  const std::uint64_t last_seq = 23;  // 4 h / 600 s, minus the tail step
  for (const auto& row : snap->ships) {
    EXPECT_TRUE(row.has_summary);
    EXPECT_GE(row.last_sequence, last_seq);
  }
  EXPECT_EQ(server.stats().malformed_dropped, 0u);
  for (const auto& uplink : uplinks) {
    EXPECT_EQ(uplink->stats().overflow_dropped, 0u);
  }
}

// ---------------------------------------------------------------------------
// The assembled two-tier system: real ShipSystems uplinking to shore.

TEST(FleetSimTest, SeededFaultSurfacesInTheShoreView) {
  FleetSimConfig cfg;
  cfg.ship_count = 3;
  cfg.ship_template.plant_count = 1;
  cfg.ship_template.dc_template.vibration_period = SimTime::from_seconds(600);
  cfg.ship_template.dc_template.process_period = SimTime::from_seconds(60);
  FleetSim fleet(cfg);

  // Hull 1's motor develops an imbalance; hulls 2 and 3 stay healthy.
  fleet.ship(0).chiller(0).faults().schedule(
      {FailureMode::MotorImbalance, SimTime(0), SimTime(0), 0.9,
       plant::GrowthProfile::Step});
  fleet.run_until(SimTime::from_hours(2.0));

  const auto snap = fleet.server().snapshot();
  EXPECT_EQ(snap->ships.size(), 3u);
  EXPECT_EQ(snap->ships_alive, 3u);
  for (const auto& row : snap->ships) {
    EXPECT_TRUE(row.has_summary);
    EXPECT_GE(row.last_sequence, 10u);  // 2 h at a 600 s cadence
  }

  // The sick motor shows up as the worst cross-fleet maintenance item,
  // attributed to hull 1.
  ASSERT_FALSE(snap->items.empty());
  const auto& top = snap->items.front();
  EXPECT_EQ(top.ship.value(), 1u);
  EXPECT_TRUE(top.has_diagnosis);
  EXPECT_EQ(top.mode, FailureMode::MotorImbalance);
  EXPECT_LT(top.health, 1.0);

  // And the comparative baseline singles the hull out against its sisters.
  const auto& server_stats = fleet.server().stats();
  EXPECT_GT(server_stats.summaries_applied, 3u * 10u);
  EXPECT_EQ(server_stats.malformed_dropped, 0u);

  const std::string view = fleet.server().render_fleet_view();
  EXPECT_NE(view.find("Hull-01"), std::string::npos);
  EXPECT_NE(view.find("MotorImbalance"), std::string::npos);
}

TEST(FleetSimTest, UplinkSurvivesShoreLinkOutage) {
  FleetSimConfig cfg;
  cfg.ship_count = 2;
  cfg.ship_template.plant_count = 1;
  cfg.ship_template.uplink.reliable.initial_rto = SimTime::from_seconds(120);
  FleetSim fleet(cfg);

  // The shore link partitions hard for 45 minutes; only retransmission can
  // get the quarantined summaries through afterwards.
  fleet.shore().schedule_outage({"fleet", SimTime::from_seconds(500),
                                 SimTime::from_seconds(3200), 1.0});
  fleet.run_until(SimTime::from_hours(2.0));

  const auto snap = fleet.server().snapshot();
  EXPECT_EQ(snap->ships_alive, 2u);
  for (const auto& row : snap->ships) {
    EXPECT_TRUE(row.has_summary);
    EXPECT_GE(row.last_sequence, 10u);
  }
  EXPECT_GT(fleet.ship(0).uplink()->stats().retransmits, 0u);
  EXPECT_EQ(fleet.server().stats().malformed_dropped, 0u);
}

TEST(FleetSimTest, ShoreDownlinkReconfiguresOneHullsDc) {
  // The shore operator fires a control-plane command at hull 1: it crosses
  // the shore link fire-and-forget, the hull re-issues it on its shipboard
  // PDME->DC reliable stream (which owns the acks and revision stamping),
  // and the target DC applies and persists it. Sister hulls are untouched.
  FleetSimConfig cfg;
  cfg.ship_count = 2;
  cfg.ship_template.plant_count = 1;
  cfg.shore.drop_probability = 0.0;
  cfg.shore.duplicate_probability = 0.0;
  FleetSim fleet(cfg);

  // Let a few summary cadences elapse so the server has learned hull 1's
  // real shore endpoint from its traffic.
  fleet.run_until(SimTime::from_seconds(1500));
  ASSERT_GT(fleet.server().stats().summaries_applied, 0u);

  net::CommandMessage cmd;
  cmd.target = DcId(1);
  cmd.settings = {{"dc.report_hysteresis", 0.07},
                  {"validator.spike_sigmas", 6.5}};
  cmd.reason = "shore ops: tighten hull 1 screening";
  ASSERT_TRUE(fleet.server().send_command(ShipId(1), cmd, fleet.now()));
  EXPECT_EQ(fleet.server().stats().commands_sent, 1u);

  fleet.run_until(SimTime::from_seconds(2400));

  auto& dc = fleet.ship(0).concentrator(0);
  EXPECT_GE(dc.config_revision(), 1u);
  EXPECT_EQ(dc.runtime_setting("dc.report_hysteresis"), 0.07);
  EXPECT_EQ(dc.runtime_setting("validator.spike_sigmas"), 6.5);
  EXPECT_GT(fleet.ship(0).pdme().stats().commands_sent, 0u);
  EXPECT_GT(fleet.ship(0).pdme().stats().command_acks, 0u);

  // The sister hull never saw the command: still at factory defaults.
  auto& other = fleet.ship(1).concentrator(0);
  EXPECT_EQ(other.config_revision(), 0u);
  EXPECT_NE(other.runtime_setting("dc.report_hysteresis"), 0.07);
  EXPECT_EQ(fleet.ship(1).pdme().stats().commands_sent, 0u);
}

}  // namespace
}  // namespace mpros::fleet
