// E4 — SBFR memory footprint (§6.3).
//
// Paper claims: "The sizes of the current spike machine (Machine 0) and the
// stiction machine (Machine 1) are respectively 229 and 93 bytes. The
// interpreter that executes the SBFR system in the DCs is about 2000 bytes
// long." And: "100 state machines operating in parallel and their
// interpreter can fit in less than 32K bytes." This harness prints our
// measured equivalents and runs image-serialization micro-benchmarks.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mpros/sbfr/interpreter.hpp"
#include "mpros/sbfr/library.hpp"

namespace {

using namespace mpros::sbfr;

void print_footprint_table() {
  const MachineDef spike = make_spike_machine();
  const MachineDef stiction = make_stiction_machine();
  const MachineDef threshold = make_threshold_machine(0, 10.0, 3, 0, 0x42);
  const MachineDef trend = make_trend_machine(0, 0.1, 5, 0, 0x43);

  SbfrSystem hundred(4);
  for (int i = 0; i < 50; ++i) {
    hundred.add_machine(spike);
    hundred.add_machine(stiction);
  }

  std::printf(
      "\nE4 SBFR footprint (paper §6.3)\n"
      "  %-28s %8s %10s\n", "artifact", "paper", "measured");
  std::printf("  %-28s %7s %9zu B\n", "spike machine image", "229 B",
              spike.image_size());
  std::printf("  %-28s %7s %9zu B\n", "stiction machine image", "93 B",
              stiction.image_size());
  std::printf("  %-28s %7s %9zu B\n", "threshold machine image", "-",
              threshold.image_size());
  std::printf("  %-28s %7s %9zu B\n", "trend machine image", "-",
              trend.image_size());
  std::printf("  %-28s %7s %9zu B  (%s)\n",
              "100 machines runtime RAM", "<32 KB",
              hundred.memory_footprint(),
              hundred.memory_footprint() < 32 * 1024 ? "within budget"
                                                     : "OVER budget");
  std::printf("  note: the paper's ~2000-byte interpreter is native 90s\n"
              "        embedded code; ours is the C++ SbfrSystem class and\n"
              "        is excluded from the RAM figure above.\n\n");
}

void BM_SerializeSpike(benchmark::State& state) {
  const MachineDef spike = make_spike_machine();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spike.serialize());
  }
}
BENCHMARK(BM_SerializeSpike);

void BM_DeserializeSpike(benchmark::State& state) {
  const auto image = make_spike_machine().serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MachineDef::deserialize(image));
  }
  state.SetLabel("machine download (§6.3 smart-sensor update)");
}
BENCHMARK(BM_DeserializeSpike);

void BM_ValidateMachine(benchmark::State& state) {
  const MachineDef spike = make_spike_machine();
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate(spike));
  }
}
BENCHMARK(BM_ValidateMachine);

}  // namespace

int main(int argc, char** argv) {
  print_footprint_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
