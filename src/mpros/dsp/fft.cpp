#include "mpros/dsp/fft.hpp"

#include <algorithm>

#include "mpros/common/assert.hpp"
#include "mpros/common/units.hpp"
#include "mpros/dsp/plan_cache.hpp"
#include "mpros/dsp/scratch.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::dsp {
namespace {

telemetry::Counter& ffts_performed() {
  static telemetry::Counter& c =
      telemetry::Registry::instance().counter("dsp.ffts_performed");
  return c;
}

}  // namespace

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

FftPlan::FftPlan(std::size_t n) : n_(n) {
  MPROS_EXPECTS(is_power_of_two(n) && n >= 2);

  bit_reverse_.resize(n);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n; ++b) {
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (log2n - 1 - b);
    }
    bit_reverse_[i] = r;
  }

  twiddle_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle = -kTwoPi * static_cast<double>(k) /
                         static_cast<double>(n);
    twiddle_[k] = Complex(std::cos(angle), std::sin(angle));
  }
}

void FftPlan::transform(std::span<Complex> x, bool invert) const {
  MPROS_EXPECTS(x.size() == n_);
  ffts_performed().inc();

  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bit_reverse_[i];
    if (i < j) std::swap(x[i], x[j]);
  }

  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t stride = n_ / len;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        Complex w = twiddle_[k * stride];
        if (invert) w = std::conj(w);
        const Complex u = x[start + k];
        const Complex v = x[start + k + len / 2] * w;
        x[start + k] = u + v;
        x[start + k + len / 2] = u - v;
      }
    }
  }

  if (invert) {
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (Complex& c : x) c *= inv_n;
  }
}

void FftPlan::forward(std::span<Complex> x) const { transform(x, false); }

void FftPlan::inverse(std::span<Complex> x) const { transform(x, true); }

RealFftPlan::RealFftPlan(std::size_t n) : n_(n), half_plan_(n / 2) {
  MPROS_EXPECTS(is_power_of_two(n) && n >= 4);
  split_twiddle_.resize(n / 2 + 1);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const double angle = -kTwoPi * static_cast<double>(k) /
                         static_cast<double>(n);
    split_twiddle_[k] = Complex(std::cos(angle), std::sin(angle));
  }
}

void RealFftPlan::forward(std::span<const double> x, std::span<Complex> half,
                          std::span<Complex> scratch) const {
  MPROS_EXPECTS(x.size() <= n_);
  MPROS_EXPECTS(half.size() >= bins() && scratch.size() >= scratch_size());
  const std::size_t m = n_ / 2;

  // Pack adjacent real samples into one complex sample each; anything past
  // the end of `x` is zero padding.
  for (std::size_t j = 0; j < m; ++j) {
    const double re = 2 * j < x.size() ? x[2 * j] : 0.0;
    const double im = 2 * j + 1 < x.size() ? x[2 * j + 1] : 0.0;
    scratch[j] = Complex(re, im);
  }
  half_plan_.forward(scratch.first(m));

  // Split Z (the m-point FFT of the packed signal) into the FFTs of the even
  // and odd subsequences, then recombine: X[k] = E[k] + W^k O[k].
  for (std::size_t k = 0; k <= m; ++k) {
    const Complex zk = scratch[k == m ? 0 : k];
    const Complex zmk = std::conj(scratch[(m - k) % m]);
    const Complex even = 0.5 * (zk + zmk);
    const Complex odd = Complex(0.0, -0.5) * (zk - zmk);
    half[k] = even + split_twiddle_[k] * odd;
  }
}

void RealFftPlan::inverse(std::span<const Complex> half, std::span<double> x,
                          std::span<Complex> scratch) const {
  MPROS_EXPECTS(half.size() >= bins() && x.size() >= n_);
  MPROS_EXPECTS(scratch.size() >= scratch_size());
  const std::size_t m = n_ / 2;

  // Undo the split: recover the m-point FFT of the packed complex signal.
  for (std::size_t k = 0; k < m; ++k) {
    const Complex xk = half[k];
    const Complex xmk = std::conj(half[m - k]);
    const Complex even = 0.5 * (xk + xmk);
    const Complex odd = 0.5 * (xk - xmk) * std::conj(split_twiddle_[k]);
    scratch[k] = even + Complex(0.0, 1.0) * odd;
  }
  half_plan_.inverse(scratch.first(m));

  for (std::size_t j = 0; j < m; ++j) {
    x[2 * j] = scratch[j].real();
    x[2 * j + 1] = scratch[j].imag();
  }
}

std::vector<Complex> fft_real(std::span<const double> x, std::size_t n) {
  if (n == 0) n = next_power_of_two(std::max<std::size_t>(x.size(), 2));
  MPROS_EXPECTS(is_power_of_two(n) && n >= x.size());

  std::vector<Complex> buf(n, Complex{});
  std::transform(x.begin(), x.end(), buf.begin(),
                 [](double v) { return Complex(v, 0.0); });
  PlanCache::instance().complex_plan(n).forward(buf);
  return buf;
}

std::vector<Complex> ifft(std::span<const Complex> spectrum) {
  MPROS_EXPECTS(is_power_of_two(spectrum.size()));
  std::vector<Complex> buf(spectrum.begin(), spectrum.end());
  PlanCache::instance().complex_plan(buf.size()).inverse(buf);
  return buf;
}

std::vector<Complex> rfft(std::span<const double> x, std::size_t n) {
  if (n == 0) n = next_power_of_two(std::max<std::size_t>(x.size(), 4));
  MPROS_EXPECTS(is_power_of_two(n) && n >= 4 && n >= x.size());

  const RealFftPlan& plan = PlanCache::instance().real_plan(n);
  std::vector<Complex> half(plan.bins());
  plan.forward(x, half, DspScratch::local().complex_lane(0, plan.scratch_size()));
  return half;
}

std::vector<double> irfft(std::span<const Complex> half) {
  MPROS_EXPECTS(half.size() >= 3);
  const std::size_t n = (half.size() - 1) * 2;
  MPROS_EXPECTS(is_power_of_two(n));

  const RealFftPlan& plan = PlanCache::instance().real_plan(n);
  std::vector<double> x(n);
  plan.inverse(half, x, DspScratch::local().complex_lane(0, plan.scratch_size()));
  return x;
}

}  // namespace mpros::dsp
