#pragma once
// Synthetic training-set generation for the WNN classifier.
//
// The real program would train on the seeded-fault and destructive-test
// data of §9; we generate labelled vibration windows from the plant
// simulator instead (one healthy class + the vibration-visible failure
// modes at assorted severities).

#include <memory>

#include "mpros/nn/classifier.hpp"

namespace mpros {

struct WnnTrainingConfig {
  std::size_t windows_per_class = 12;
  std::size_t window_samples = 4096;
  double sample_rate_hz = 40960.0;
  double min_severity = 0.45;
  double max_severity = 0.95;
  /// Expose the classifier to transitory faults: per-window burst duty is
  /// drawn uniformly from [min_duty, 1]. 1.0 keeps training steady-state.
  double min_duty = 1.0;
  double burst_period_s = 0.05;
  std::uint64_t seed = 0x7EAC4;
  nn::WnnConfig classifier;
};

/// Generate windows and train a classifier; returns it with train stats
/// applied. The classifier is shared by every DC in a fleet.
std::shared_ptr<nn::WnnClassifier> train_wnn_classifier(
    const WnnTrainingConfig& cfg = WnnTrainingConfig());

/// The training windows themselves (exposed for tests/benches).
[[nodiscard]] std::vector<nn::LabelledWindow> make_training_windows(
    const WnnTrainingConfig& cfg);

}  // namespace mpros
