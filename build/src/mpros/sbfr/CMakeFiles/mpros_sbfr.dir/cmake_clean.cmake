file(REMOVE_RECURSE
  "CMakeFiles/mpros_sbfr.dir/disasm.cpp.o"
  "CMakeFiles/mpros_sbfr.dir/disasm.cpp.o.d"
  "CMakeFiles/mpros_sbfr.dir/expr.cpp.o"
  "CMakeFiles/mpros_sbfr.dir/expr.cpp.o.d"
  "CMakeFiles/mpros_sbfr.dir/interpreter.cpp.o"
  "CMakeFiles/mpros_sbfr.dir/interpreter.cpp.o.d"
  "CMakeFiles/mpros_sbfr.dir/library.cpp.o"
  "CMakeFiles/mpros_sbfr.dir/library.cpp.o.d"
  "CMakeFiles/mpros_sbfr.dir/machine.cpp.o"
  "CMakeFiles/mpros_sbfr.dir/machine.cpp.o.d"
  "libmpros_sbfr.a"
  "libmpros_sbfr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_sbfr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
