file(REMOVE_RECURSE
  "CMakeFiles/mpros_oosm.dir/object_model.cpp.o"
  "CMakeFiles/mpros_oosm.dir/object_model.cpp.o.d"
  "CMakeFiles/mpros_oosm.dir/persistence.cpp.o"
  "CMakeFiles/mpros_oosm.dir/persistence.cpp.o.d"
  "CMakeFiles/mpros_oosm.dir/ship_builder.cpp.o"
  "CMakeFiles/mpros_oosm.dir/ship_builder.cpp.o.d"
  "libmpros_oosm.a"
  "libmpros_oosm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_oosm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
