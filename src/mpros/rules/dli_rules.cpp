#include "mpros/rules/dli_rules.hpp"

namespace mpros::rules {

using domain::FailureMode;

std::vector<Rule> chiller_rulebase(const domain::MachineSignature& /*sig*/,
                                   const domain::ProcessNominals& nom) {
  std::vector<Rule> rules;

  // Rotor imbalance: dominant 1x with quiet 2x; requires meaningful load so
  // coast-down wobble is not misread.
  {
    Rule r;
    r.mode = FailureMode::MotorImbalance;
    r.name = "rotor imbalance";
    r.recommendation = "Field balance the motor rotor at next availability.";
    r.clauses = {
        Clause{feat::kOrder1, 0.12, 0.45, 3.0, true,
               Gate{feat::kLoad, 0.25, 1.1},
               "1x running-speed amplitude elevated"},
        Clause{feat::kOverallRms, 0.10, 0.40, 1.0, false, std::nullopt,
               "overall vibration level raised"},
    };
    rules.push_back(std::move(r));
  }

  // Shaft misalignment: strong 2x (and some 3x) relative to 1x.
  {
    Rule r;
    r.mode = FailureMode::ShaftMisalignment;
    r.name = "coupling misalignment";
    r.recommendation = "Laser-align motor/gearbox coupling; inspect coupling "
                       "element for wear.";
    r.clauses = {
        Clause{feat::kOrder2, 0.08, 0.32, 3.0, true,
               Gate{feat::kLoad, 0.25, 1.1},
               "2x running-speed amplitude elevated"},
        Clause{feat::kOrder3, 0.04, 0.18, 1.0, false, std::nullopt,
               "3x component present"},
    };
    rules.push_back(std::move(r));
  }

  // Mechanical looseness: half-order subharmonics plus a raised full
  // harmonic series. The paper's own example: gate on load so a lightly
  // loaded compressor's natural rattle is not called looseness.
  {
    Rule r;
    r.mode = FailureMode::BearingHousingLooseness;
    r.name = "bearing housing looseness";
    r.recommendation = "Check hold-down bolts and bearing cap torque; inspect "
                       "for fretting at the housing fit.";
    r.clauses = {
        Clause{feat::kSubharmonics, 0.05, 0.25, 3.0, true,
               Gate{feat::kLoad, 0.30, 1.1},
               "half-order subharmonics present"},
        Clause{feat::kHarmonicSeries, 0.18, 0.50, 2.0, false,
               Gate{feat::kLoad, 0.30, 1.1},
               "extended running-speed harmonic series"},
    };
    rules.push_back(std::move(r));
  }

  // Broken/cracked rotor bars: pole-pass sidebands rise toward the line
  // component in the current spectrum. Clause ramps DOWNWARD in dB-below-
  // carrier (deep sidebands are healthy).
  {
    Rule r;
    r.mode = FailureMode::RotorBarDefect;
    r.name = "rotor bar defect";
    r.recommendation = "Schedule a current-signature retest at steady load; "
                       "plan rotor inspection if sidebands deepen.";
    r.clauses = {
        Clause{feat::kPolePassSidebands, 45.0, 25.0, 3.0, true,
               Gate{feat::kLoad, 0.40, 1.1},
               "pole-pass sidebands closing on line component"},
        Clause{feat::kOrder1, 0.10, 0.35, 0.5, false, std::nullopt,
               "slight 1x modulation"},
    };
    rules.push_back(std::move(r));
  }

  // Stator winding fault: 2x-line vibration plus thermal signature.
  {
    Rule r;
    r.mode = FailureMode::StatorWindingFault;
    r.name = "stator winding fault";
    r.recommendation = "Megger the stator windings; check phase balance at "
                       "the motor controller.";
    r.clauses = {
        Clause{feat::kTwiceLine, 0.06, 0.25, 3.0, true, std::nullopt,
               "2x line-frequency vibration elevated"},
        Clause{feat::kWindingTemp, nom.motor_winding_temp_c + 12.0,
               nom.motor_winding_temp_c + 45.0, 2.0, false, std::nullopt,
               "winding temperature above normal"},
        Clause{feat::kMotorCurrent, nom.motor_current_a * 1.06,
               nom.motor_current_a * 1.30, 1.0, false, std::nullopt,
               "supply current elevated"},
    };
    rules.push_back(std::move(r));
  }

  // Motor bearing wear: envelope tones at the motor bearing rates plus
  // impulsiveness in the raw waveform.
  {
    Rule r;
    r.mode = FailureMode::MotorBearingWear;
    r.name = "motor bearing defect";
    r.recommendation = "Trend envelope spectra weekly; plan bearing "
                       "replacement within the predicted window.";
    r.clauses = {
        Clause{feat::kBpfo, 0.03, 0.15, 2.5, false, std::nullopt,
               "outer-race tone in envelope spectrum"},
        Clause{feat::kBpfi, 0.03, 0.15, 2.5, false, std::nullopt,
               "inner-race tone in envelope spectrum"},
        Clause{feat::kKurtosis, 4.0, 8.0, 1.0, false, std::nullopt,
               "impulsive waveform (kurtosis raised)"},
        Clause{feat::kCrestFactor, 4.5, 7.5, 1.0, false, std::nullopt,
               "crest factor raised"},
        Clause{feat::kBearingTemp, nom.bearing_temp_c + 8.0,
               nom.bearing_temp_c + 30.0, 0.5, false, std::nullopt,
               "bearing temperature above normal"},
    };
    rules.push_back(std::move(r));
  }

  // Compressor bearing wear: ball-spin / cage tones dominate (the
  // compressor end runs the high-speed shaft).
  {
    Rule r;
    r.mode = FailureMode::CompressorBearingWear;
    r.name = "compressor bearing defect";
    r.recommendation = "Pull an oil sample for wear metals; plan high-speed "
                       "bearing inspection.";
    r.clauses = {
        // Required: without the ball-spin tone on the high-speed shaft a
        // motor-end bearing defect (high crest, warm bearings) would be
        // misattributed to the compressor.
        Clause{feat::kBsf, 0.03, 0.15, 2.5, true, std::nullopt,
               "ball-spin tone in envelope spectrum"},
        Clause{feat::kFtf, 0.02, 0.10, 1.5, false, std::nullopt,
               "cage tone in envelope spectrum"},
        Clause{feat::kCrestFactor, 4.5, 7.5, 1.0, false, std::nullopt,
               "crest factor raised"},
        Clause{feat::kBearingTemp, nom.bearing_temp_c + 8.0,
               nom.bearing_temp_c + 30.0, 0.5, false, std::nullopt,
               "bearing temperature above normal"},
    };
    rules.push_back(std::move(r));
  }

  // Oil degradation: thermal/pressure signature with mild mechanical
  // consequence; primarily a process-variable call.
  {
    Rule r;
    r.mode = FailureMode::OilDegradation;
    r.name = "lubricating oil degradation";
    r.recommendation = "Replace oil charge and filter; send sample for "
                       "viscosity and acid-number analysis.";
    r.clauses = {
        Clause{feat::kOilTemp, nom.oil_temperature_c + 8.0,
               nom.oil_temperature_c + 25.0, 2.5, true, std::nullopt,
               "oil temperature above normal"},
        // Down-ramp: pressure falling below nominal is the alarm direction.
        Clause{feat::kOilPressure, nom.oil_pressure_kpa - 30.0,
               nom.oil_pressure_kpa - 110.0, 2.0, false, std::nullopt,
               "oil pressure below normal"},
        Clause{feat::kBearingTemp, nom.bearing_temp_c + 5.0,
               nom.bearing_temp_c + 20.0, 1.0, false, std::nullopt,
               "bearing temperature drifting up"},
    };
    rules.push_back(std::move(r));
  }

  // Gear mesh wear: mesh tone plus 1x-shaft sidebands.
  {
    Rule r;
    r.mode = FailureMode::GearMeshWear;
    r.name = "gear mesh wear";
    r.recommendation = "Inspect gear contact pattern and backlash; check oil "
                       "for bronze/steel particulate.";
    r.clauses = {
        Clause{feat::kGearMesh, 0.09, 0.30, 2.5, true,
               Gate{feat::kLoad, 0.25, 1.1},
               "gear-mesh amplitude elevated"},
        Clause{feat::kGearSidebands, 0.03, 0.15, 2.5, false, std::nullopt,
               "running-speed sidebands around mesh tone"},
    };
    rules.push_back(std::move(r));
  }

  // Pump cavitation: broadband high-frequency noise and vane-pass activity
  // with depressed suction (evaporator) pressure.
  {
    Rule r;
    r.mode = FailureMode::PumpCavitation;
    r.name = "pump cavitation";
    r.recommendation = "Verify suction strainer and water-box venting; "
                       "throttle discharge to move off the curve knee.";
    r.clauses = {
        Clause{feat::kBroadbandHf, 0.05, 0.125, 2.5, true, std::nullopt,
               "broadband high-frequency energy raised"},
        Clause{feat::kVanePass, 0.05, 0.20, 1.5, false, std::nullopt,
               "vane-pass amplitude elevated"},
        Clause{feat::kCrestFactor, 4.0, 7.0, 1.0, false, std::nullopt,
               "impulsive noise floor"},
    };
    rules.push_back(std::move(r));
  }

  // Refrigerant leak: falling evaporator pressure, rising superheat, and a
  // chilled-water supply temperature that will not pull down.
  {
    Rule r;
    r.mode = FailureMode::RefrigerantLeak;
    r.name = "refrigerant undercharge / leak";
    r.recommendation = "Leak-test the charge circuit; weigh in refrigerant "
                       "after repair.";
    r.clauses = {
        // Down-ramp on evaporator pressure.
        Clause{feat::kEvapPressure, nom.evap_pressure_kpa - 25.0,
               nom.evap_pressure_kpa - 90.0, 2.5, true, std::nullopt,
               "evaporator pressure below normal"},
        Clause{feat::kSuperheat, nom.superheat_c + 2.5,
               nom.superheat_c + 10.0, 2.0, false, std::nullopt,
               "suction superheat elevated"},
        Clause{feat::kChwSupplyTemp, nom.chilled_water_supply_c + 1.5,
               nom.chilled_water_supply_c + 5.0, 1.0, false, std::nullopt,
               "chilled-water supply temperature not holding"},
    };
    rules.push_back(std::move(r));
  }

  // Condenser fouling: head pressure and condenser approach climb.
  {
    Rule r;
    r.mode = FailureMode::CondenserFouling;
    r.name = "condenser fouling";
    r.recommendation = "Brush condenser tubes; verify condenser-water flow "
                       "and treatment.";
    r.clauses = {
        Clause{feat::kCondPressure, nom.cond_pressure_kpa + 80.0,
               nom.cond_pressure_kpa + 330.0, 2.5, true, std::nullopt,
               "condensing pressure above normal"},
        Clause{feat::kCondApproach, 6.0, 13.0, 2.0, false, std::nullopt,
               "condenser approach temperature widened"},
        Clause{feat::kMotorCurrent, nom.motor_current_a * 1.04,
               nom.motor_current_a * 1.22, 1.0, false, std::nullopt,
               "compressor drawing extra current"},
    };
    rules.push_back(std::move(r));
  }

  return rules;
}

}  // namespace mpros::rules
