#pragma once
// Umbrella header for the MPROS library.
//
// MPROS — Machinery Prognostics and Diagnostics System — reproduction of
// Bennett & Hadden, "Condition-Based Maintenance: Algorithms and
// Applications for Embedded High Performance Computing" (IPPS/SPDP 1999
// workshops). See README.md for the architecture tour and DESIGN.md for the
// per-experiment index.

// Substrates
#include "mpros/common/clock.hpp"
#include "mpros/common/ids.hpp"
#include "mpros/common/log.hpp"
#include "mpros/common/rng.hpp"
#include "mpros/common/thread_pool.hpp"
#include "mpros/db/database.hpp"
#include "mpros/domain/equipment.hpp"
#include "mpros/domain/failure_modes.hpp"
#include "mpros/dsp/cepstrum.hpp"
#include "mpros/dsp/dct.hpp"
#include "mpros/dsp/envelope.hpp"
#include "mpros/dsp/fft.hpp"
#include "mpros/dsp/filter.hpp"
#include "mpros/dsp/spectrum.hpp"
#include "mpros/dsp/stft.hpp"
#include "mpros/dsp/stats.hpp"
#include "mpros/dsp/window.hpp"
#include "mpros/wavelet/dwt.hpp"
#include "mpros/wavelet/features.hpp"

// Analyzers
#include "mpros/fuzzy/chiller_fuzzy.hpp"
#include "mpros/fuzzy/engine.hpp"
#include "mpros/nn/classifier.hpp"
#include "mpros/nn/network.hpp"
#include "mpros/rules/dli_rules.hpp"
#include "mpros/rules/engine.hpp"
#include "mpros/rules/features.hpp"
#include "mpros/sbfr/disasm.hpp"
#include "mpros/sbfr/interpreter.hpp"
#include "mpros/sbfr/library.hpp"

// Fusion & ship model
#include "mpros/fusion/bayes_net.hpp"
#include "mpros/fusion/dempster_shafer.hpp"
#include "mpros/fusion/diagnostic_fusion.hpp"
#include "mpros/fusion/hazard.hpp"
#include "mpros/fusion/prognostic_fusion.hpp"
#include "mpros/fusion/trend.hpp"
#include "mpros/oosm/object_model.hpp"
#include "mpros/oosm/persistence.hpp"
#include "mpros/oosm/ship_builder.hpp"

// Distributed system
#include "mpros/dc/data_concentrator.hpp"
#include "mpros/net/network.hpp"
#include "mpros/net/report.hpp"
#include "mpros/pdme/browser.hpp"
#include "mpros/pdme/health.hpp"
#include "mpros/pdme/mimosa.hpp"
#include "mpros/pdme/pdme.hpp"
#include "mpros/pdme/resident.hpp"
#include "mpros/pdme/spatial.hpp"
#include "mpros/plant/chiller.hpp"
#include "mpros/plant/daq.hpp"
#include "mpros/plant/ema.hpp"

// Telemetry
#include "mpros/telemetry/metrics.hpp"
#include "mpros/telemetry/recorder.hpp"
#include "mpros/telemetry/trace.hpp"

// Facade
#include "mpros/mpros/replay.hpp"
#include "mpros/mpros/ship_system.hpp"
#include "mpros/mpros/validation.hpp"
#include "mpros/mpros/wnn_training.hpp"
