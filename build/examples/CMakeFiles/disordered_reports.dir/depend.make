# Empty dependencies file for disordered_reports.
# This may be replaced when dependencies are built.
