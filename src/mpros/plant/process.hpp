#pragma once
// Quasi-static chiller process model.
//
// "Slower changing parameters such as temperatures and pressures must also
// be monitored, but at a lower frequency and can be treated as scalars"
// (§2). The model drives each process variable toward a target determined
// by load and active fault severities, with first-order lag and sensor
// noise — enough dynamics to exercise trending, SBFR threshold machines,
// and the fuzzy rulebase.

#include <array>
#include <map>
#include <string>

#include "mpros/common/clock.hpp"
#include "mpros/common/rng.hpp"
#include "mpros/domain/equipment.hpp"
#include "mpros/domain/failure_modes.hpp"

namespace mpros::plant {

using Severities = std::array<double, domain::kFailureModeCount>;

/// Crisp process-variable snapshot, keyed by the canonical
/// rules::feat::process.* names (kept as plain strings here so plant does
/// not depend on rules).
using ProcessSnapshot = std::map<std::string, double>;

class ProcessModel {
 public:
  ProcessModel(domain::ProcessNominals nominals, std::uint64_t seed,
               SimTime time_constant = SimTime::from_seconds(120.0));

  /// Advance the state by dt toward the fault/load-determined targets.
  void advance(SimTime dt, double load_fraction, const Severities& severities);

  /// Current (noisy) snapshot including "process.load".
  [[nodiscard]] ProcessSnapshot snapshot();

  /// Noise-free internal state (for tests).
  [[nodiscard]] ProcessSnapshot state() const;

  /// Reset to nominal conditions.
  void reset();

 private:
  struct Targets {
    double evap_kpa, cond_kpa, chw_supply_c, superheat_c, oil_kpa, oil_c,
        winding_c, bearing_c, cond_approach_c, current_a;
  };
  [[nodiscard]] Targets targets(double load,
                                const Severities& severities) const;

  domain::ProcessNominals nom_;
  Rng rng_;
  SimTime tau_;
  double load_ = 0.8;
  Targets state_;
};

}  // namespace mpros::plant
