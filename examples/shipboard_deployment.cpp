// Shipboard-deployment rehearsal (paper §4.9): "power supply and
// communications are stable in our labs but may not be the same on board
// the ships. Simulating the range of problems that may arise will let us
// improve robustness to the point of long-term unattended operation."
//
// This scenario runs a fleet with a developing fault, snapshots the OOSM to
// its relational store mid-mission (§4.6 background persistence), then
// simulates a PDME power loss: a brand-new executive is stood up over the
// reloaded model and rebuilds its fused state from the persisted report
// objects — the maintenance picture survives the outage.
//
//   ./build/examples/shipboard_deployment

#include <cstdio>

#include "mpros/mpros/mpros.hpp"

int main() {
  using namespace mpros;
  using domain::FailureMode;

  ShipSystemConfig cfg;
  cfg.plant_count = 2;
  cfg.network.drop_probability = 0.10;  // shipboard comms are not lab comms
  cfg.network.jitter = SimTime::from_seconds(10.0);
  ShipSystem ship(cfg);

  ship.chiller(0).faults().schedule({FailureMode::GearMeshWear,
                                     SimTime::from_hours(0.2),
                                     SimTime::from_hours(1.5), 0.85,
                                     plant::GrowthProfile::Accelerating});

  std::printf("Mission start: 2 plants, gear wear developing on plant 1.\n");
  ship.run_until(SimTime::from_hours(2.0));

  const ObjectId gearbox = ship.plant_objects(0).gearbox;
  const auto before = ship.pdme().prioritized_list(gearbox);
  std::printf("Before outage: %zu fused conclusion(s) on %s\n",
              before.size(), ship.model().name(gearbox).c_str());
  for (const auto& item : before) {
    std::printf("  %-24s bel=%.3f sev=%.2f\n",
                domain::condition_text(item.mode).c_str(), item.fused_belief,
                item.max_severity);
  }

  // §4.6: persistence "entirely managed in the background" — snapshot the
  // whole ship model (machines, relationships, accumulated report objects).
  db::Database store;
  oosm::Persistence::save(ship.model(), store);
  std::printf("\nOOSM snapshot: %zu objects across tables {%s}\n",
              ship.model().object_count(),
              [&store] {
                std::string names;
                for (const auto& n : store.table_names()) {
                  if (!names.empty()) names += ", ";
                  names += n;
                }
                return names;
              }()
                  .c_str());

  // --- PDME power loss: everything volatile is gone. -----------------------
  std::printf("\n*** PDME power loss. Restarting from the snapshot... ***\n\n");
  oosm::ObjectModel restored = oosm::Persistence::load(store);
  pdme::PdmeExecutive recovered(restored);
  const std::size_t refused = recovered.rebuild_from_model();

  const auto after = recovered.prioritized_list(gearbox);
  std::printf("Recovered %zu reports from the persisted model.\n", refused);
  std::printf("After restart: %zu fused conclusion(s) on %s\n", after.size(),
              restored.name(gearbox).c_str());
  for (const auto& item : after) {
    std::printf("  %-24s bel=%.3f sev=%.2f\n",
                domain::condition_text(item.mode).c_str(), item.fused_belief,
                item.max_severity);
  }

  const bool match =
      !before.empty() && !after.empty() &&
      before.front().mode == after.front().mode &&
      std::abs(before.front().fused_belief - after.front().fused_belief) <
          1e-9;
  std::printf("\nMaintenance picture %s the outage.\n",
              match ? "SURVIVED" : "did NOT survive");
  return match ? 0 : 1;
}
