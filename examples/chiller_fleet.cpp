// Fleet scenario: four chiller plants, staggered faults of different kinds,
// a lossy ship network, and the PDME's fleet-wide prioritized maintenance
// list plus the ICAS CSV export.
//
//   ./build/examples/chiller_fleet [hours]

#include <cstdio>
#include <cstdlib>

#include "mpros/mpros/mpros.hpp"
#include "mpros/pdme/health.hpp"
#include "mpros/pdme/spatial.hpp"

int main(int argc, char** argv) {
  using namespace mpros;
  using domain::FailureMode;

  double hours = 4.0;
  if (argc > 1) hours = std::atof(argv[1]);

  ShipSystemConfig cfg;
  cfg.plant_count = 4;
  cfg.network.drop_probability = 0.05;
  cfg.network.duplicate_probability = 0.02;
  cfg.network.jitter = SimTime::from_seconds(5.0);
  cfg.enable_fleet_analyzer = true;  // §5.7 PDME-resident comparisons
  cfg.pdme.auto_retest = true;       // §6.3 "closer look" commands
  ShipSystem ship(cfg);

  // Plant 1: imbalance developing over two hours.
  ship.chiller(0).faults().schedule({FailureMode::MotorImbalance,
                                     SimTime::from_hours(0.2),
                                     SimTime::from_hours(2.0), 0.9,
                                     plant::GrowthProfile::Linear});
  // Plant 2: refrigerant leak (process-side fault, caught by fuzzy logic).
  ship.chiller(1).faults().schedule({FailureMode::RefrigerantLeak,
                                     SimTime::from_hours(0.5),
                                     SimTime::from_hours(1.0), 0.95,
                                     plant::GrowthProfile::Linear});
  // Plant 3: gear wear, accelerating profile.
  ship.chiller(2).faults().schedule({FailureMode::GearMeshWear,
                                     SimTime::from_hours(1.0),
                                     SimTime::from_hours(2.0), 0.8,
                                     plant::GrowthProfile::Accelerating});
  // Plant 4 stays healthy as the control.

  std::printf("Running %zu plants for %.1f simulated hours...\n\n",
              ship.plant_count(), hours);
  ship.run_until(SimTime::from_hours(hours));

  const auto stats = ship.fleet_stats();
  std::printf("Fleet: %llu samples processed, %llu reports emitted, "
              "%llu fused at PDME (net: %llu dropped, %llu duplicated)\n\n",
              static_cast<unsigned long long>(stats.samples_processed),
              static_cast<unsigned long long>(stats.reports_emitted),
              static_cast<unsigned long long>(stats.reports_fused),
              static_cast<unsigned long long>(stats.network.dropped),
              static_cast<unsigned long long>(stats.network.duplicated));

  std::printf("%s\n", pdme::render_summary(ship.pdme(), ship.model()).c_str());

  // §10.1 multi-level health: roll part-level conclusions up to the ship.
  const pdme::HealthRollup rollup;
  std::printf("%s\n",
              rollup.render_tree(ship.pdme(), ship.ship().ship).c_str());

  // §10.1 spatial reasoning: discount sympathetic vibration, trace flows.
  const pdme::SpatialReasoner spatial;
  const auto suspicions = spatial.flow_suspicions(ship.pdme());
  if (!suspicions.empty()) {
    std::printf("--- Flow-based watch items ---\n");
    for (const auto& s : suspicions) {
      std::printf("  %s (%s) -> watch %s (suspicion %.2f)\n",
                  ship.model().name(s.source).c_str(),
                  domain::condition_text(s.source_mode).c_str(),
                  ship.model().name(s.downstream).c_str(), s.suspicion);
    }
    std::printf("\n");
  }
  if (ship.pdme().stats().retests_commanded > 0) {
    std::printf("PDME commanded %llu closer-look vibration tests.\n\n",
                static_cast<unsigned long long>(
                    ship.pdme().stats().retests_commanded));
  }

  std::printf("--- ICAS export ---\n%s\n",
              pdme::export_icas_csv(ship.pdme(), ship.model()).c_str());
  return 0;
}
