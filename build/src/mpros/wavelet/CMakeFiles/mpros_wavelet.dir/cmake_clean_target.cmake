file(REMOVE_RECURSE
  "libmpros_wavelet.a"
)
