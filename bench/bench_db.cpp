// E22 — Durable OOSM: group-commit throughput and crash-recovery time.
//
// Part 1 measures sustained journaled-mutation throughput through the
// write-ahead log as a function of commit-batch size. Batch 1 is the
// classical fsync-per-record discipline; larger batches amortise the single
// group-commit fsync over the whole window (the WAL seals one CRC-framed
// commit record and issues ONE fsync per commit() regardless of how many
// mutations the window buffered). Acceptance: group commit at batch >= 64
// sustains at least 5x the fsync-per-record rate.
//
// Part 2 measures recovery time against OOSM size: a ship model plus N
// failure-prediction Report objects (~11 properties each) is journalled
// through a DurableModelJournal into the WAL, then the directory is
// reopened cold — construction replays the log — and Persistence::load
// rebuilds the model. Metric: wall milliseconds to a live model, and the
// fsync-free replay rate in records/s (the CPU-bound half, which is what
// the --quick gate checks).
//
// Writes BENCH_DB.json at the current working directory (run from the repo
// root to refresh the committed snapshot).
//
// --quick: CI regression gate. Re-measures the WAL replay rate and fails
// on a >20% drop against the committed BENCH_DB.json baseline. Never
// rewrites the file.

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "mpros/db/durable.hpp"
#include "mpros/oosm/object_model.hpp"
#include "mpros/oosm/persistence.hpp"
#include "mpros/oosm/ship_builder.hpp"

namespace {

using namespace mpros;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Scratch durability directory, wiped on entry and exit.
class BenchDir {
 public:
  explicit BenchDir(const std::string& tag) {
    path_ = fs::temp_directory_path() /
            ("mpros_bench_db_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~BenchDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

db::TableSchema stream_schema() {
  return db::TableSchema{"stream",
                         {db::ColumnDef{"id", db::ValueType::Integer, false},
                          db::ColumnDef{"tag", db::ValueType::Text, false},
                          db::ColumnDef{"value", db::ValueType::Real, false}}};
}

// ---------------------------------------------------------------------------
// Part 1: group-commit throughput vs batch size.

struct CommitPoint {
  std::size_t batch = 0;
  std::uint64_t records = 0;
  std::uint64_t fsyncs = 0;
  double records_per_s = 0.0;
};

CommitPoint run_commit_sweep(std::size_t batch, std::uint64_t records) {
  BenchDir dir("commit_" + std::to_string(batch));
  db::DurabilityConfig cfg;
  cfg.directory = dir.str();
  cfg.checkpoint_bytes = 0;  // pure log append; compaction measured apart
  db::DurableDatabase dur(cfg);
  dur.db().create_table(stream_schema());
  dur.commit();  // schema out of the timed window

  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < records; ++i) {
    dur.db().insert_auto("stream",
                         {db::Value("vibration"),
                          db::Value(static_cast<double>(i) * 0.5)});
    if ((i + 1) % batch == 0) dur.commit();
  }
  if (records % batch != 0) dur.commit();
  const double elapsed = seconds_since(t0);

  CommitPoint p;
  p.batch = batch;
  p.records = records;
  p.fsyncs = dur.wal_stats().fsyncs;
  p.records_per_s = static_cast<double>(records) / elapsed;
  return p;
}

// ---------------------------------------------------------------------------
// Part 2: recovery time vs OOSM size.

struct RecoveryPoint {
  std::size_t reports = 0;
  std::size_t objects = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t records_replayed = 0;
  double recover_ms = 0.0;           ///< WAL replay + Persistence::load
  double replay_records_per_s = 0.0;
};

/// Journal a ship plus `reports` Report objects into a fresh WAL; commit
/// every 64 posts (the ShipSystem's per-barrier cadence writ small).
void populate(const std::string& dir, std::size_t reports) {
  db::DurabilityConfig cfg;
  cfg.directory = dir;
  cfg.checkpoint_bytes = 0;
  db::DurableDatabase dur(cfg);
  oosm::ObjectModel model;
  oosm::DurableModelJournal journal(model, dur.db());
  const auto ship = oosm::build_ship(model, "bench", 2, 2);
  for (std::size_t i = 0; i < reports; ++i) {
    oosm::PropertyMap props;
    props.append("belief", 0.25 + 0.5 * static_cast<double>(i % 3));
    props.append("dc", std::int64_t(1 + i % 4));
    props.append("ks", std::int64_t(1 + i % 4));
    props.append("machine_condition", std::int64_t(2 + i % 5));
    props.append("plausibility", 0.75);
    props.append("severity", 0.4);
    props.append("timestamp_us", std::int64_t(i) * 1000000);
    const ObjectId report = model.create_object_bulk(
        "report-" + std::to_string(i), domain::EquipmentKind::Report,
        std::move(props));
    model.relate(report, oosm::Relation::RefersTo,
                 ship.plants[i % ship.plants.size()].motor);
    if ((i + 1) % 64 == 0) dur.commit();
  }
  dur.commit();
}

RecoveryPoint run_recovery(std::size_t reports) {
  BenchDir dir("recover_" + std::to_string(reports));
  populate(dir.str(), reports);

  const auto t0 = Clock::now();
  db::DurabilityConfig cfg;
  cfg.directory = dir.str();
  cfg.checkpoint_bytes = 0;
  db::DurableDatabase dur(cfg);  // construction replays the whole log
  const oosm::ObjectModel model = oosm::Persistence::load(dur.db());
  const double elapsed = seconds_since(t0);

  RecoveryPoint p;
  p.reports = reports;
  p.objects = model.object_count();
  p.wal_bytes = dur.wal_bytes();
  p.records_replayed = dur.recovery().records_replayed;
  p.recover_ms = elapsed * 1e3;
  p.replay_records_per_s =
      static_cast<double>(dur.recovery().records_replayed) / elapsed;
  return p;
}

// ---------------------------------------------------------------------------

void write_json(const std::vector<CommitPoint>& commits,
                const std::vector<RecoveryPoint>& recoveries,
                double replay_best) {
  std::FILE* f = std::fopen("BENCH_DB.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_db: cannot write BENCH_DB.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"experiment\": \"E22\",\n  \"group_commit\": [\n");
  for (std::size_t i = 0; i < commits.size(); ++i) {
    const CommitPoint& p = commits[i];
    std::fprintf(f,
                 "    {\"batch\": %zu, \"records\": %llu, \"fsyncs\": %llu, "
                 "\"records_per_s\": %.0f}%s\n",
                 p.batch, static_cast<unsigned long long>(p.records),
                 static_cast<unsigned long long>(p.fsyncs), p.records_per_s,
                 i + 1 < commits.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"recovery\": [\n");
  for (std::size_t i = 0; i < recoveries.size(); ++i) {
    const RecoveryPoint& p = recoveries[i];
    std::fprintf(f,
                 "    {\"reports\": %zu, \"objects\": %zu, "
                 "\"wal_bytes\": %llu, \"records_replayed\": %llu, "
                 "\"recover_ms\": %.2f, \"replay_records_per_s\": %.0f}%s\n",
                 p.reports, p.objects,
                 static_cast<unsigned long long>(p.wal_bytes),
                 static_cast<unsigned long long>(p.records_replayed),
                 p.recover_ms, p.replay_records_per_s,
                 i + 1 < recoveries.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"replay_records_per_s_best\": %.0f\n}\n",
               replay_best);
  std::fclose(f);
}

/// --quick: re-measure the fsync-free replay rate against the committed
/// baseline; exit nonzero on a >20% regression. Never rewrites the file.
int run_quick_gate() {
  double baseline = 0.0;
  std::FILE* f = std::fopen("BENCH_DB.json", "r");
  if (f != nullptr) {
    char buf[8192];
    const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
    buf[n] = '\0';
    std::fclose(f);
    const char* key = std::strstr(buf, "\"replay_records_per_s_best\"");
    if (key != nullptr) {
      std::sscanf(key, "\"replay_records_per_s_best\": %lf", &baseline);
    }
  }
  if (baseline <= 0.0) {
    std::printf("bench_db --quick: no BENCH_DB.json baseline here; "
                "nothing to gate against\n");
    return 0;
  }

  (void)run_recovery(500);  // warm-up (page cache, allocator)
  double best = 0.0;        // best-of-5: the gate runs on loaded CI machines
  for (int rep = 0; rep < 5; ++rep) {
    best = std::max(best, run_recovery(2000).replay_records_per_s);
  }
  const double floor = 0.8 * baseline;
  std::printf("bench_db --quick: WAL replay %.0f records/s "
              "(baseline %.0f/s, floor %.0f/s)\n", best, baseline, floor);
  if (best < floor) {
    std::fprintf(stderr,
                 "bench_db --quick: REGRESSION — more than 20%% below the "
                 "committed baseline\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == std::string_view("--quick")) {
      return run_quick_gate();
    }
  }

  std::printf(
      "\nE22 durable OOSM (group commit + crash recovery)\n"
      "  claim  : persistence 'managed entirely in the background' (§4.6)\n"
      "           survives a kill -9 with one fsync per barrier\n"
      "  shape  : records/s grows with commit batch (amortised fsync);\n"
      "           recovery wall time grows ~linearly with model size\n\n");

  std::vector<CommitPoint> commits;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{8},
                                  std::size_t{64}, std::size_t{512}}) {
    const CommitPoint p = run_commit_sweep(batch, 4096);
    std::printf("  group-commit batch %4zu : %9.0f records/s  (%llu fsyncs)\n",
                p.batch, p.records_per_s,
                static_cast<unsigned long long>(p.fsyncs));
    commits.push_back(p);
  }

  std::vector<RecoveryPoint> recoveries;
  double replay_best = 0.0;
  for (const std::size_t reports : {std::size_t{100}, std::size_t{1000},
                                    std::size_t{5000}}) {
    const RecoveryPoint p = run_recovery(reports);
    std::printf(
        "  recovery %5zu reports  : %8.2f ms  (%zu objects, %llu records, "
        "%.0f records/s replay)\n",
        p.reports, p.recover_ms, p.objects,
        static_cast<unsigned long long>(p.records_replayed),
        p.replay_records_per_s);
    recoveries.push_back(p);
    replay_best = std::max(replay_best, p.replay_records_per_s);
  }

  write_json(commits, recoveries, replay_best);
  std::printf("BENCH_DB.json written\n");
  return 0;
}
