#include "mpros/db/table.hpp"

#include <algorithm>

#include "mpros/common/assert.hpp"

namespace mpros::db {

std::optional<std::size_t> TableSchema::column_index(
    const std::string& column) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column) return i;
  }
  return std::nullopt;
}

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  MPROS_EXPECTS(!schema_.columns.empty());
  MPROS_EXPECTS(schema_.columns[0].type == ValueType::Integer);
  MPROS_EXPECTS(!schema_.columns[0].nullable);
}

bool Table::cell_admissible(std::size_t column_index, const Value& v) const {
  if (column_index >= schema_.columns.size()) return false;
  const ColumnDef& col = schema_.columns[column_index];
  if (v.is_null()) return col.nullable;
  // Integer values are acceptable in REAL columns (numeric coercion).
  return v.type() == col.type ||
         (col.type == ValueType::Real && v.type() == ValueType::Integer);
}

bool Table::row_admissible(const Row& row) const {
  if (row.size() != schema_.columns.size()) return false;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (!cell_admissible(i, row[i])) return false;
  }
  return true;
}

void Table::check_cell(std::size_t column_index, const Value& v) const {
  MPROS_EXPECTS(cell_admissible(column_index, v));
}

void Table::check_row(const Row& row) const {
  MPROS_EXPECTS(row.size() == schema_.columns.size());
  for (std::size_t i = 0; i < row.size(); ++i) check_cell(i, row[i]);
}

std::int64_t Table::insert(Row row) {
  check_row(row);
  const std::int64_t key = row[0].as_integer();
  MPROS_EXPECTS(pk_index_.find(key) == pk_index_.end());

  auto [it, inserted] = rows_.emplace(key, std::move(row));
  MPROS_ASSERT(inserted);
  pk_index_.emplace(key, it);
  index_row(key, it->second);
  next_key_ = std::max(next_key_, key + 1);
  return key;
}

std::int64_t Table::insert_auto(Row row_without_key) {
  Row row;
  row.reserve(row_without_key.size() + 1);
  row.emplace_back(next_key_);
  for (Value& v : row_without_key) row.push_back(std::move(v));
  return insert(std::move(row));
}

const Row* Table::find(std::int64_t key) const {
  const auto it = pk_index_.find(key);
  return it == pk_index_.end() ? nullptr : &it->second->second;
}

bool Table::update(std::int64_t key, const std::string& column, Value v) {
  const auto it = pk_index_.find(key);
  if (it == pk_index_.end()) return false;
  const auto col = schema_.column_index(column);
  MPROS_EXPECTS(col.has_value());
  MPROS_EXPECTS(*col != 0);  // primary keys are immutable

  // Validate the candidate BEFORE mutating: the old order unindexed and
  // overwrote the row first, so a type-mismatched update tripped the
  // precondition with the table already inconsistent.
  check_cell(*col, v);

  Row& row = it->second->second;
  unindex_row(key, row);
  row[*col] = std::move(v);
  index_row(key, row);
  return true;
}

bool Table::erase(std::int64_t key) {
  const auto it = pk_index_.find(key);
  if (it == pk_index_.end()) return false;
  unindex_row(key, it->second->second);
  rows_.erase(it->second);
  pk_index_.erase(it);
  return true;
}

std::vector<Row> Table::select(const Predicate& where) const {
  std::vector<Row> out;
  for (const auto& [key, row] : rows_) {
    if (!where || where(row)) out.push_back(row);
  }
  return out;
}

std::vector<std::int64_t> Table::select_keys(const Predicate& where) const {
  std::vector<std::int64_t> out;
  for (const auto& [key, row] : rows_) {
    if (!where || where(row)) out.push_back(key);
  }
  return out;
}

void Table::create_index(const std::string& column) {
  const auto col = schema_.column_index(column);
  MPROS_EXPECTS(col.has_value());
  if (indexes_.contains(*col)) return;

  SecondaryIndex index;
  for (const auto& [key, row] : rows_) {
    index.emplace(row[*col], key);
  }
  indexes_.emplace(*col, std::move(index));
}

std::vector<std::int64_t> Table::lookup(const std::string& column,
                                        const Value& v) const {
  const auto col = schema_.column_index(column);
  MPROS_EXPECTS(col.has_value());
  const auto idx = indexes_.find(*col);
  MPROS_EXPECTS(idx != indexes_.end());

  std::vector<std::int64_t> out;
  auto [lo, hi] = idx->second.equal_range(v);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::int64_t> Table::lookup_range(const std::string& column,
                                              const Value& lo,
                                              const Value& hi) const {
  const auto col = schema_.column_index(column);
  MPROS_EXPECTS(col.has_value());
  const auto idx = indexes_.find(*col);
  MPROS_EXPECTS(idx != indexes_.end());

  std::vector<std::int64_t> out;
  for (auto it = idx->second.lower_bound(lo); it != idx->second.end(); ++it) {
    if (hi.less(it->first)) break;
    out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> Table::indexed_columns() const {
  std::vector<std::size_t> cols;
  cols.reserve(indexes_.size());
  for (const auto& [col, index] : indexes_) cols.push_back(col);
  std::sort(cols.begin(), cols.end());
  std::vector<std::string> out;
  out.reserve(cols.size());
  for (const std::size_t col : cols) out.push_back(schema_.columns[col].name);
  return out;
}

std::vector<std::string> Table::index_violations() const {
  std::vector<std::string> out;
  const auto equivalent = [](const Value& a, const Value& b) {
    return !a.less(b) && !b.less(a);
  };
  for (const auto& [col, index] : indexes_) {
    const std::string& column = schema_.columns[col].name;
    if (index.size() != rows_.size()) {
      out.push_back(schema_.name + "." + column + ": index has " +
                    std::to_string(index.size()) + " entries for " +
                    std::to_string(rows_.size()) + " rows");
    }
    for (const auto& [value, key] : index) {
      const Row* row = find(key);
      if (row == nullptr) {
        out.push_back(schema_.name + "." + column + ": entry for key " +
                      std::to_string(key) + " dangles (row erased)");
      } else if (!equivalent(value, (*row)[col])) {
        out.push_back(schema_.name + "." + column + ": entry for key " +
                      std::to_string(key) + " holds stale value " +
                      value.to_string());
      }
    }
    for (const auto& [key, row] : rows_) {
      auto [lo, hi] = index.equal_range(row[col]);
      std::size_t hits = 0;
      for (auto it = lo; it != hi; ++it) {
        if (it->second == key) ++hits;
      }
      if (hits != 1) {
        out.push_back(schema_.name + "." + column + ": row " +
                      std::to_string(key) + " appears " +
                      std::to_string(hits) + " times in the index");
      }
    }
  }
  return out;
}

void Table::index_row(std::int64_t key, const Row& row) {
  for (auto& [col, index] : indexes_) {
    index.emplace(row[col], key);
  }
}

void Table::unindex_row(std::int64_t key, const Row& row) {
  for (auto& [col, index] : indexes_) {
    auto [lo, hi] = index.equal_range(row[col]);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == key) {
        index.erase(it);
        break;
      }
    }
  }
}

}  // namespace mpros::db
