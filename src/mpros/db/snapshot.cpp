#include "mpros/db/snapshot.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "mpros/common/log.hpp"
#include "mpros/db/wal.hpp"

namespace mpros::db {

namespace {

constexpr char kSnapshotMagic[4] = {'M', 'D', 'B', 'S'};

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const Database& db,
                                          std::uint64_t wal_seq) {
  using namespace walfmt;
  std::vector<std::uint8_t> out;
  for (const char c : kSnapshotMagic) {
    put_u8(out, static_cast<std::uint8_t>(c));
  }
  put_u8(out, kSnapshotVersion);
  put_u64(out, wal_seq);

  std::vector<std::string> names = db.table_names();
  std::sort(names.begin(), names.end());
  put_u32(out, static_cast<std::uint32_t>(names.size()));
  for (const std::string& name : names) {
    const Table& t = db.table(name);
    put_schema(out, t.schema());
    put_i64(out, t.next_auto_key());
    const std::vector<std::string> indexed = t.indexed_columns();
    put_u32(out, static_cast<std::uint32_t>(indexed.size()));
    for (const std::string& column : indexed) put_str(out, column);
    put_u64(out, t.row_count());
    for (const auto& [key, row] : t.rows()) put_row(out, row);
  }
  return out;
}

std::optional<DecodedSnapshot> decode_snapshot(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 5 ||
      std::memcmp(bytes.data(), kSnapshotMagic, 4) != 0 ||
      bytes[4] != kSnapshotVersion) {
    return std::nullopt;
  }
  walfmt::TryReader in{bytes, 5};

  DecodedSnapshot out;
  std::uint32_t table_count = 0;
  if (!in.u64(out.wal_seq) || !in.u32(table_count)) return std::nullopt;
  // A table is at least a schema with one column (~11 bytes).
  if (table_count > in.remaining() / 11) return std::nullopt;

  for (std::uint32_t ti = 0; ti < table_count; ++ti) {
    TableSchema schema;
    std::int64_t next_key = 0;
    std::uint32_t index_count = 0;
    if (!in.schema(schema) || !in.i64(next_key) || !in.u32(index_count)) {
      return std::nullopt;
    }
    // Pre-validate through the same gate the WAL uses, so the aborting
    // create_table contract is never tripped by hostile bytes.
    RedoOp create;
    create.kind = RedoOp::Kind::CreateTable;
    create.table = schema.name;
    create.schema = schema;
    if (!apply_redo(out.db, std::move(create))) return std::nullopt;
    Table& t = out.db.table(schema.name);

    if (index_count > in.remaining() / 4) return std::nullopt;
    for (std::uint32_t i = 0; i < index_count; ++i) {
      std::string column;
      if (!in.str(column)) return std::nullopt;
      const auto col = schema.column_index(column);
      if (!col.has_value()) return std::nullopt;
      t.create_index(column);
    }

    std::uint64_t row_count = 0;
    if (!in.u64(row_count)) return std::nullopt;
    // A row is at least a count plus one tag byte per cell.
    if (row_count > in.remaining() / 5) return std::nullopt;
    for (std::uint64_t ri = 0; ri < row_count; ++ri) {
      Row row;
      if (!in.row(row)) return std::nullopt;
      if (!t.row_admissible(row)) return std::nullopt;
      if (row[0].type() != ValueType::Integer) return std::nullopt;
      if (t.find(row[0].as_integer()) != nullptr) return std::nullopt;
      t.insert(std::move(row));
    }
    // Live tables maintain next_key > every existing key; a recorded
    // counter below that would make a later insert_auto collide and abort.
    if (next_key < t.next_auto_key()) return std::nullopt;
    t.restore_next_key(next_key);
  }
  if (in.remaining() != 0) return std::nullopt;  // trailing garbage
  return out;
}

bool write_snapshot(const Database& db, std::uint64_t wal_seq,
                    const std::string& path) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(db, wal_seq);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    MPROS_LOG_ERROR("db", "snapshot: cannot open %s: %s", tmp.c_str(),
                    std::strerror(errno));
    return false;
  }
  const bool written =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
      std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!written) {
    MPROS_LOG_ERROR("db", "snapshot: write to %s failed: %s", tmp.c_str(),
                    std::strerror(errno));
    std::remove(tmp.c_str());
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    MPROS_LOG_ERROR("db", "snapshot: rename %s -> %s failed: %s", tmp.c_str(),
                    path.c_str(), ec.message().c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<DecodedSnapshot> load_snapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 1 << 16> buf;
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0) {
    bytes.insert(bytes.end(), buf.data(), buf.data() + n);
  }
  std::fclose(f);
  return decode_snapshot(bytes);
}

}  // namespace mpros::db
