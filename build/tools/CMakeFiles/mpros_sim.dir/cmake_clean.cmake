file(REMOVE_RECURSE
  "CMakeFiles/mpros_sim.dir/mpros_sim.cpp.o"
  "CMakeFiles/mpros_sim.dir/mpros_sim.cpp.o.d"
  "mpros_sim"
  "mpros_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
