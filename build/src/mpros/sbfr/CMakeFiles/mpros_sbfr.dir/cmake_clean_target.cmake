file(REMOVE_RECURSE
  "libmpros_sbfr.a"
)
