#include "mpros/rules/engine.hpp"

#include <algorithm>
#include <cmath>

#include "mpros/common/assert.hpp"

namespace mpros::rules {

std::optional<double> clause_evidence(const Clause& clause,
                                      const FeatureFrame& frame) {
  if (clause.gate) {
    const auto gate_value = frame.maybe(clause.gate->feature);
    if (!gate_value || *gate_value < clause.gate->min_value ||
        *gate_value > clause.gate->max_value) {
      return std::nullopt;
    }
  }
  const auto value = frame.maybe(clause.feature);
  // Abstain on non-finite evidence too: FeatureFrame::set refuses NaN/Inf,
  // but frames can be built by external callers with their own ingest.
  if (!value || !std::isfinite(*value)) return std::nullopt;

  const double span = clause.alarm - clause.warn;
  MPROS_ASSERT(span != 0.0);
  return std::clamp((*value - clause.warn) / span, 0.0, 1.0);
}

RuleEngine::RuleEngine(std::vector<Rule> rulebase,
                       GradientThresholds thresholds)
    : rules_(std::move(rulebase)), thresholds_(thresholds) {
  for (const Rule& r : rules_) {
    MPROS_EXPECTS(!r.clauses.empty());
    for (const Clause& c : r.clauses) {
      MPROS_EXPECTS(c.weight > 0.0);
      MPROS_EXPECTS(c.alarm != c.warn);
    }
  }
}

std::vector<Diagnosis> RuleEngine::evaluate(
    const FeatureFrame& frame, const BelievabilityTable& beliefs) const {
  std::vector<Diagnosis> out;

  for (const Rule& rule : rules_) {
    double weighted_sum = 0.0;
    double weight_total = 0.0;
    bool required_failed = false;
    std::string explanation;

    for (const Clause& clause : rule.clauses) {
      const std::optional<double> evidence = clause_evidence(clause, frame);
      if (!evidence) {
        // Gated out or unmeasured: the clause abstains entirely, but a
        // required clause that cannot be checked blocks the rule.
        if (clause.required) required_failed = true;
        continue;
      }
      if (clause.required && *evidence <= 0.0) required_failed = true;
      weighted_sum += clause.weight * *evidence;
      weight_total += clause.weight;
      if (*evidence > 0.0 && !clause.describe.empty()) {
        if (!explanation.empty()) explanation += "; ";
        explanation += clause.describe;
      }
    }

    if (required_failed || weight_total <= 0.0) continue;
    const double severity = weighted_sum / weight_total;
    if (severity < rule.fire_threshold) continue;

    Diagnosis d;
    d.mode = rule.mode;
    d.severity = severity;
    d.gradient = gradient_of(severity, thresholds_);
    d.belief = beliefs.belief(rule.mode);
    d.explanation = explanation.empty() ? rule.name : explanation;
    d.recommendation = rule.recommendation;
    d.prognosis = default_prognosis(severity, thresholds_);
    out.push_back(std::move(d));
  }

  std::sort(out.begin(), out.end(), [](const Diagnosis& a, const Diagnosis& b) {
    return a.severity > b.severity;
  });
  return out;
}

}  // namespace mpros::rules
