#include "mpros/db/wal.hpp"

#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "mpros/common/assert.hpp"
#include "mpros/common/log.hpp"

namespace mpros::db {

namespace walfmt {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_value(std::vector<std::uint8_t>& out, const Value& v) {
  put_u8(out, static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::Null: break;
    case ValueType::Integer: put_i64(out, v.as_integer()); break;
    case ValueType::Real: put_f64(out, v.as_real()); break;
    case ValueType::Text: put_str(out, v.as_text()); break;
  }
}

void put_row(std::vector<std::uint8_t>& out, const Row& row) {
  put_u32(out, static_cast<std::uint32_t>(row.size()));
  for (const Value& v : row) put_value(out, v);
}

void put_schema(std::vector<std::uint8_t>& out, const TableSchema& schema) {
  put_str(out, schema.name);
  put_u32(out, static_cast<std::uint32_t>(schema.columns.size()));
  for (const ColumnDef& col : schema.columns) {
    put_str(out, col.name);
    put_u8(out, static_cast<std::uint8_t>(col.type));
    put_u8(out, col.nullable ? 1 : 0);
  }
}

void put_op(std::vector<std::uint8_t>& out, const RedoOp& op) {
  put_u8(out, static_cast<std::uint8_t>(op.kind));
  put_str(out, op.table);
  switch (op.kind) {
    case RedoOp::Kind::CreateTable:
      put_schema(out, op.schema);
      break;
    case RedoOp::Kind::DropTable:
      break;
    case RedoOp::Kind::CreateIndex:
      put_str(out, op.column);
      break;
    case RedoOp::Kind::Insert:
      put_i64(out, op.key);
      put_row(out, op.row);
      break;
    case RedoOp::Kind::Update:
      put_i64(out, op.key);
      put_str(out, op.column);
      put_value(out, op.value);
      break;
    case RedoOp::Kind::Erase:
      put_i64(out, op.key);
      break;
  }
}

bool TryReader::u8(std::uint8_t& v) {
  if (remaining() < 1) return false;
  v = data[pos++];
  return true;
}

bool TryReader::u32(std::uint32_t& v) {
  if (remaining() < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos += 4;
  return true;
}

bool TryReader::u64(std::uint64_t& v) {
  if (remaining() < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos += 8;
  return true;
}

bool TryReader::i64(std::int64_t& v) {
  std::uint64_t u = 0;
  if (!u64(u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}

bool TryReader::f64(double& v) {
  std::uint64_t u = 0;
  if (!u64(u)) return false;
  v = std::bit_cast<double>(u);
  return true;
}

bool TryReader::str(std::string& s) {
  std::uint32_t len = 0;
  if (!u32(len) || remaining() < len) return false;
  s.assign(reinterpret_cast<const char*>(data.data() + pos), len);
  pos += len;
  return true;
}

bool TryReader::value(Value& v) {
  std::uint8_t tag = 0;
  if (!u8(tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::Null:
      v = Value();
      return true;
    case ValueType::Integer: {
      std::int64_t i = 0;
      if (!i64(i)) return false;
      v = Value(i);
      return true;
    }
    case ValueType::Real: {
      double d = 0;
      if (!f64(d)) return false;
      v = Value(d);
      return true;
    }
    case ValueType::Text: {
      std::string s;
      if (!str(s)) return false;
      v = Value(std::move(s));
      return true;
    }
  }
  return false;  // unknown tag
}

bool TryReader::row(Row& out_row) {
  std::uint32_t count = 0;
  if (!u32(count)) return false;
  // Memory-bomb guard: a value is at least one tag byte.
  if (count > remaining()) return false;
  out_row.clear();
  out_row.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Value v;
    if (!value(v)) return false;
    out_row.push_back(std::move(v));
  }
  return true;
}

bool TryReader::schema(TableSchema& out_schema) {
  if (!str(out_schema.name)) return false;
  std::uint32_t count = 0;
  if (!u32(count)) return false;
  // A column is at least name-len(4) + type(1) + nullable(1) bytes.
  if (count > remaining() / 6) return false;
  out_schema.columns.clear();
  out_schema.columns.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ColumnDef col;
    std::uint8_t type = 0;
    std::uint8_t nullable = 0;
    if (!str(col.name) || !u8(type) || !u8(nullable)) return false;
    if (type > static_cast<std::uint8_t>(ValueType::Text)) return false;
    if (nullable > 1) return false;
    col.type = static_cast<ValueType>(type);
    col.nullable = nullable == 1;
    out_schema.columns.push_back(std::move(col));
  }
  return true;
}

bool TryReader::op(RedoOp& out_op) {
  std::uint8_t kind = 0;
  if (!u8(kind)) return false;
  if (kind < static_cast<std::uint8_t>(RedoOp::Kind::CreateTable) ||
      kind > static_cast<std::uint8_t>(RedoOp::Kind::Erase)) {
    return false;
  }
  out_op = RedoOp{};
  out_op.kind = static_cast<RedoOp::Kind>(kind);
  if (!str(out_op.table)) return false;
  switch (out_op.kind) {
    case RedoOp::Kind::CreateTable:
      return schema(out_op.schema);
    case RedoOp::Kind::DropTable:
      return true;
    case RedoOp::Kind::CreateIndex:
      return str(out_op.column);
    case RedoOp::Kind::Insert:
      return i64(out_op.key) && row(out_op.row);
    case RedoOp::Kind::Update:
      return i64(out_op.key) && str(out_op.column) && value(out_op.value);
    case RedoOp::Kind::Erase:
      return i64(out_op.key);
  }
  return false;
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace walfmt

namespace {

constexpr char kWalMagic[4] = {'M', 'W', 'A', 'L'};
constexpr std::size_t kHeaderBytes = sizeof(kWalMagic) + 1;  // magic + version
constexpr std::size_t kFrameOverhead = 8;                    // len + crc

bool header_intact(std::span<const std::uint8_t> bytes) {
  return bytes.size() >= kHeaderBytes &&
         std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) == 0 &&
         bytes[sizeof(kWalMagic)] == kWalVersion;
}

std::vector<std::uint8_t> read_file(const std::string& path, bool& existed) {
  std::vector<std::uint8_t> bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  existed = f != nullptr;
  if (f == nullptr) return bytes;
  std::array<std::uint8_t, 1 << 16> buf;
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0) {
    bytes.insert(bytes.end(), buf.data(), buf.data() + n);
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path, std::uint64_t next_seq)
    : path_(std::move(path)), next_seq_(next_seq) {
  MPROS_EXPECTS(next_seq_ >= 1);
  bool existed = false;
  const std::vector<std::uint8_t> bytes = read_file(path_, existed);
  const bool fresh = !existed || !header_intact(bytes);
  file_ = std::fopen(path_.c_str(), fresh ? "wb" : "ab");
  if (file_ == nullptr) {
    MPROS_LOG_ERROR("db", "wal: cannot open %s: %s", path_.c_str(),
                    std::strerror(errno));
    return;
  }
  if (fresh) {
    if (!write_header()) return;
  } else {
    synced_bytes_ = bytes.size();
  }
}

WriteAheadLog::~WriteAheadLog() {
  // Deliberately no flush: anything not group-committed through sync() is
  // not durable, which is exactly the crash semantics recovery expects.
  if (file_ != nullptr) std::fclose(file_);
}

bool WriteAheadLog::write_header() {
  std::uint8_t header[kHeaderBytes];
  std::memcpy(header, kWalMagic, sizeof(kWalMagic));
  header[sizeof(kWalMagic)] = kWalVersion;
  if (std::fwrite(header, 1, kHeaderBytes, file_) != kHeaderBytes ||
      std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    MPROS_LOG_ERROR("db", "wal: cannot write header to %s", path_.c_str());
    std::fclose(file_);
    file_ = nullptr;
    return false;
  }
  synced_bytes_ = kHeaderBytes;
  return true;
}

void WriteAheadLog::append(const RedoOp& op) {
  walfmt::put_op(pending_, op);
  ++pending_ops_;
  ++stats_.records;
}

void WriteAheadLog::discard_pending() {
  pending_.clear();
  pending_ops_ = 0;
}

std::uint64_t WriteAheadLog::seal() {
  if (pending_ops_ == 0) return 0;
  const std::uint64_t seq = next_seq_++;
  std::vector<std::uint8_t> payload;
  payload.reserve(12 + pending_.size());
  walfmt::put_u64(payload, seq);
  walfmt::put_u32(payload, static_cast<std::uint32_t>(pending_ops_));
  payload.insert(payload.end(), pending_.begin(), pending_.end());
  walfmt::put_u32(sealed_, static_cast<std::uint32_t>(payload.size()));
  walfmt::put_u32(sealed_, walfmt::crc32(payload));
  sealed_.insert(sealed_.end(), payload.begin(), payload.end());
  discard_pending();
  ++stats_.commits;
  return seq;
}

bool WriteAheadLog::sync(bool do_fsync) {
  if (sealed_.empty()) return true;
  if (file_ == nullptr) return false;
  const std::size_t n = sealed_.size();
  if (std::fwrite(sealed_.data(), 1, n, file_) != n ||
      std::fflush(file_) != 0 ||
      (do_fsync && ::fsync(fileno(file_)) != 0)) {
    MPROS_LOG_ERROR("db", "wal: write to %s failed: %s", path_.c_str(),
                    std::strerror(errno));
    return false;
  }
  synced_bytes_ += n;
  sealed_.clear();
  if (do_fsync) ++stats_.fsyncs;
  return true;
}

bool WriteAheadLog::reset(std::uint64_t next_seq) {
  MPROS_EXPECTS(next_seq >= 1);
  discard_pending();
  sealed_.clear();
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  next_seq_ = next_seq;
  synced_bytes_ = 0;
  if (file_ == nullptr) {
    MPROS_LOG_ERROR("db", "wal: cannot reopen %s: %s", path_.c_str(),
                    std::strerror(errno));
    return false;
  }
  return write_header();
}

WalReplayResult WriteAheadLog::replay(
    const std::string& path, std::uint64_t after_seq,
    const std::function<bool(std::uint64_t, RedoOp&&)>& apply) {
  WalReplayResult result;
  bool existed = false;
  const std::vector<std::uint8_t> bytes = read_file(path, existed);
  if (!existed) return result;
  if (!header_intact(bytes)) {
    // Torn before the header finished (or not a WAL at all): empty log.
    result.truncated_bytes = bytes.size();
    return result;
  }
  result.valid_bytes = kHeaderBytes;

  std::size_t pos = kHeaderBytes;
  while (pos < bytes.size()) {
    walfmt::TryReader frame{std::span(bytes).subspan(pos), 0};
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    if (!frame.u32(len) || !frame.u32(crc) || frame.remaining() < len) break;
    const std::span<const std::uint8_t> payload =
        std::span(bytes).subspan(pos + kFrameOverhead, len);
    if (walfmt::crc32(payload) != crc) break;

    walfmt::TryReader body{payload, 0};
    std::uint64_t seq = 0;
    std::uint32_t op_count = 0;
    if (!body.u64(seq) || !body.u32(op_count)) break;
    if (op_count > body.remaining()) break;  // an op is >= 1 byte

    // Decode the WHOLE frame before applying any of it, so a frame that
    // turns out malformed halfway through never leaves partial effects.
    bool frame_ok = true;
    std::vector<RedoOp> ops;
    ops.reserve(op_count);
    for (std::uint32_t i = 0; i < op_count; ++i) {
      RedoOp op;
      if (!body.op(op)) {
        frame_ok = false;
        break;
      }
      ops.push_back(std::move(op));
    }
    if (frame_ok && body.remaining() != 0) frame_ok = false;
    if (!frame_ok) break;

    // A CRC-valid but semantically inadmissible op poisons the tail the
    // same way torn bytes do — but by then earlier ops of the frame have
    // been applied, so tell the caller (partial_frame) to redo recovery
    // capped at last_seq.
    const bool replay_frame = seq > after_seq;
    if (replay_frame) {
      std::uint64_t applied = 0;
      for (RedoOp& op : ops) {
        if (!apply(seq, std::move(op))) {
          frame_ok = false;
          break;
        }
        ++applied;
      }
      if (!frame_ok) {
        result.partial_frame = applied > 0;
        break;
      }
    }

    pos += kFrameOverhead + len;
    result.valid_bytes = pos;
    result.last_seq = seq;
    if (replay_frame) {
      ++result.commits;
      result.records += op_count;
    }
  }
  result.truncated_bytes = bytes.size() - result.valid_bytes;
  return result;
}

bool WriteAheadLog::truncate_torn_tail(const std::string& path,
                                       const WalReplayResult& result) {
  std::error_code ec;
  if (result.valid_bytes < kHeaderBytes) {
    // Missing or header-torn: lay down a fresh empty log.
    WriteAheadLog fresh(path);
    return fresh.ok();
  }
  if (result.truncated_bytes == 0) return true;
  std::filesystem::resize_file(path, result.valid_bytes, ec);
  if (ec) {
    MPROS_LOG_ERROR("db", "wal: truncate %s to %llu bytes failed: %s",
                    path.c_str(),
                    static_cast<unsigned long long>(result.valid_bytes),
                    ec.message().c_str());
    return false;
  }
  return true;
}

}  // namespace mpros::db
