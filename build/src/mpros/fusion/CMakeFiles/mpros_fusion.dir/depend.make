# Empty dependencies file for mpros_fusion.
# This may be replaced when dependencies are built.
