// E9 — Knowledge fusion under hostile transport (§5.1).
//
// Paper requirement: KF "must be able to accommodate inputs which are
// incomplete, time-disordered, fragmentary, and which have gaps,
// inconsistencies, and contradictions." The harness delivers one fixed
// report set across increasingly hostile network settings and reports the
// fused-belief deviation from clean in-order delivery, plus throughput.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "mpros/net/network.hpp"
#include "mpros/oosm/ship_builder.hpp"
#include "mpros/pdme/pdme.hpp"

namespace {

using namespace mpros;
using domain::FailureMode;

std::vector<net::FailureReport> report_set(ObjectId motor, std::size_t n) {
  std::vector<net::FailureReport> reports;
  // Imbalance dominates (3:1 over the conflicting misalignment call), as a
  // real degraded machine's report stream would; a perfectly symmetric
  // conflict would sit at bel=0.5 where random loss could tip either way.
  const FailureMode modes[] = {FailureMode::MotorImbalance,
                               FailureMode::MotorImbalance,
                               FailureMode::MotorImbalance,
                               FailureMode::ShaftMisalignment};
  for (std::size_t i = 0; i < n; ++i) {
    net::FailureReport r;
    r.dc = DcId(1);
    r.knowledge_source = KnowledgeSourceId(1 + i % 4);
    r.sensed_object = motor;
    r.machine_condition = domain::condition_id(modes[i % 4]);
    r.severity = 0.5;
    r.belief = 0.35;
    r.timestamp = SimTime::from_seconds(10.0 * static_cast<double>(i));
    reports.push_back(r);
  }
  return reports;
}

struct FusedSummary {
  double imbalance = 0.0;
  double unknown = 0.0;
  std::uint64_t fused = 0;
};

FusedSummary run_delivery(const net::NetworkConfig& net_cfg, std::size_t n) {
  oosm::ObjectModel model;
  const auto ship = oosm::build_ship(model, "bench", 1, 1);
  pdme::PdmeExecutive pdme(model);
  net::SimNetwork network(net_cfg);
  pdme.attach_to_network(network);

  for (const auto& r : report_set(ship.plants[0].motor, n)) {
    network.send("dc-1", "pdme", net::wrap(r), r.timestamp);
  }
  network.flush();

  const auto state = pdme.group_state(ship.plants[0].motor,
                                      domain::LogicalGroup::RotorDynamics);
  FusedSummary s;
  s.imbalance = state.modes[0].belief;
  s.unknown = state.unknown;
  s.fused = pdme.stats().reports_accepted;
  return s;
}

void print_e9_summary() {
  constexpr std::size_t kReports = 16;
  net::NetworkConfig clean;
  clean.jitter = SimTime::from_millis(0.001);
  const FusedSummary baseline = run_delivery(clean, kReports);

  std::printf(
      "\nE9 fusion under hostile transport (paper §5.1)\n"
      "  %-34s %9s %9s %7s\n", "network", "bel(imb)", "unknown", "fused");
  std::printf("  %-34s %9.4f %9.4f %7llu\n", "clean, in order",
              baseline.imbalance, baseline.unknown,
              static_cast<unsigned long long>(baseline.fused));

  const struct {
    const char* label;
    double drop, dup;
    double jitter_s;
  } cases[] = {
      {"heavy jitter (reordering)", 0.0, 0.0, 300.0},
      {"20% duplicates", 0.0, 0.2, 1.0},
      {"25% loss", 0.25, 0.0, 1.0},
      {"25% loss + 20% dup + jitter", 0.25, 0.2, 300.0},
  };
  for (const auto& c : cases) {
    net::NetworkConfig cfg;
    cfg.drop_probability = c.drop;
    cfg.duplicate_probability = c.dup;
    cfg.jitter = SimTime::from_seconds(c.jitter_s);
    cfg.seed = 0xE9;
    const FusedSummary s = run_delivery(cfg, kReports);
    std::printf("  %-34s %9.4f %9.4f %7llu\n", c.label, s.imbalance,
                s.unknown, static_cast<unsigned long long>(s.fused));
  }
  std::printf(
      "  shape: reordering and duplication leave fused beliefs identical\n"
      "         (commutative combination + dedup); loss moves the belief\n"
      "         but the dominant conclusion stays dominant.\n\n");
}

void BM_HostileDelivery(benchmark::State& state) {
  net::NetworkConfig cfg;
  cfg.drop_probability = 0.25;
  cfg.duplicate_probability = 0.2;
  cfg.jitter = SimTime::from_seconds(300.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_delivery(cfg, 16));
  }
  state.SetItemsProcessed(state.iterations() * 16);
  state.SetLabel("reports through hostile transport");
}
BENCHMARK(BM_HostileDelivery);

}  // namespace

int main(int argc, char** argv) {
  print_e9_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
