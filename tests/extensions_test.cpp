// Tests for the Phase-2 / §10.1 extensions: wire message envelopes, the
// PDME-resident fleet analyzer, the adaptive retest loop, spatial
// reasoning, health rollup, and temporal trend projection.

#include <gtest/gtest.h>

#include "mpros/fusion/trend.hpp"
#include "mpros/mpros/mpros.hpp"
#include "mpros/pdme/health.hpp"
#include "mpros/pdme/resident.hpp"
#include "mpros/pdme/spatial.hpp"

namespace mpros {
namespace {

using domain::FailureMode;

// --- Message envelopes -------------------------------------------------------

TEST(MessagesTest, SensorDataRoundTrip) {
  net::SensorDataMessage m;
  m.dc = DcId(3);
  m.machine = ObjectId(12);
  m.timestamp = SimTime::from_seconds(55.5);
  m.values = {{"process.cond_pressure_kpa", 1017.0},
              {"process.load", 0.8}};
  const auto bytes = net::wrap(m);
  EXPECT_EQ(net::peek_type(bytes), net::MessageType::SensorData);
  EXPECT_EQ(net::unwrap_sensor_data(bytes), m);
}

TEST(MessagesTest, TestCommandRoundTrip) {
  net::TestCommandMessage m;
  m.target = DcId(7);
  m.command = net::TestCommandMessage::Command::VibrationTest;
  m.reason = "closer look";
  const auto bytes = net::wrap(m);
  EXPECT_EQ(net::peek_type(bytes), net::MessageType::TestCommand);
  EXPECT_EQ(net::unwrap_test_command(bytes), m);
}

TEST(MessagesTest, ReportEnvelopeRoundTrip) {
  net::FailureReport r;
  r.dc = DcId(1);
  r.knowledge_source = KnowledgeSourceId(2);
  r.sensed_object = ObjectId(3);
  r.machine_condition = domain::condition_id(FailureMode::GearMeshWear);
  r.severity = 0.4;
  r.belief = 0.6;
  r.timestamp = SimTime::from_seconds(9.0);
  const auto bytes = net::wrap(r);
  EXPECT_EQ(net::peek_type(bytes), net::MessageType::FailureReportMsg);
  EXPECT_EQ(net::unwrap_report(bytes), r);
}

// --- Sensor-data intake + fleet-comparative analyzer (§5.7) ------------------

class ResidentTest : public ::testing::Test {
 protected:
  ResidentTest()
      : ship_(oosm::build_ship(model_, "Test", 2, 2)), pdme_(model_) {}

  void publish(std::size_t plant, const std::string& key, double value) {
    net::SensorDataMessage m;
    m.dc = DcId(plant + 1);
    m.machine = ship_.plants[plant].chiller;
    m.timestamp = SimTime::from_hours(1.0);
    m.values = {{key, value}};
    pdme_.accept(m);
  }

  oosm::ObjectModel model_;
  oosm::ShipModel ship_;
  pdme::PdmeExecutive pdme_;
};

TEST_F(ResidentTest, SensorDataLandsOnOosmObject) {
  publish(0, "process.cond_pressure_kpa", 1020.0);
  const auto v =
      model_.property(ship_.plants[0].chiller, "process.cond_pressure_kpa");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->numeric(), 1020.0);
  EXPECT_EQ(pdme_.stats().sensor_batches, 1u);
  // Raw telemetry is not a report.
  EXPECT_EQ(pdme_.stats().reports_accepted, 0u);
}

TEST_F(ResidentTest, FleetOutlierFlagged) {
  // Three sisters at nominal head pressure; the fourth runs 300 kPa high.
  for (std::size_t p = 0; p < 3; ++p) {
    publish(p, "process.cond_pressure_kpa", 1015.0 + 4.0 * p);
  }
  publish(3, "process.cond_pressure_kpa", 1330.0);

  pdme::FleetComparativeAnalyzer analyzer(pdme_);
  const auto issued = analyzer.scan(SimTime::from_hours(1.0));
  ASSERT_EQ(issued.size(), 1u);
  EXPECT_EQ(issued[0].sensed_object, ship_.plants[3].chiller);
  EXPECT_EQ(issued[0].machine_condition,
            domain::condition_id(FailureMode::CondenserFouling));
  EXPECT_EQ(issued[0].knowledge_source, pdme::kPdmeModelBased);

  // The conclusion was fused like any other report.
  const auto list = pdme_.prioritized_list(ship_.plants[3].chiller);
  ASSERT_FALSE(list.empty());
  EXPECT_EQ(list.front().mode, FailureMode::CondenserFouling);
}

TEST_F(ResidentTest, UniformFleetStaysQuiet) {
  for (std::size_t p = 0; p < 4; ++p) {
    publish(p, "process.cond_pressure_kpa", 1010.0 + 6.0 * p);
    publish(p, "process.evap_pressure_kpa", 353.0 + 2.0 * p);
  }
  pdme::FleetComparativeAnalyzer analyzer(pdme_);
  EXPECT_TRUE(analyzer.scan(SimTime::from_hours(1.0)).empty());
}

TEST_F(ResidentTest, LowEvapOutlierIsRefrigerantCall) {
  for (std::size_t p = 0; p < 3; ++p) {
    publish(p, "process.evap_pressure_kpa", 354.0 + 2.0 * p);
  }
  publish(3, "process.evap_pressure_kpa", 270.0);
  pdme::FleetComparativeAnalyzer analyzer(pdme_);
  const auto issued = analyzer.scan(SimTime::from_hours(1.0));
  ASSERT_EQ(issued.size(), 1u);
  EXPECT_EQ(issued[0].machine_condition,
            domain::condition_id(FailureMode::RefrigerantLeak));
}

TEST_F(ResidentTest, TooFewSistersNoComparison) {
  publish(0, "process.cond_pressure_kpa", 1015.0);
  publish(1, "process.cond_pressure_kpa", 1400.0);
  pdme::FleetComparativeAnalyzer analyzer(pdme_);
  EXPECT_TRUE(analyzer.scan(SimTime::from_hours(1.0)).empty());
}

// --- Adaptive retest (the §6.3 "closer look") --------------------------------

TEST(AutoRetestTest, SevereUncorroboratedReportTriggersCommand) {
  oosm::ObjectModel model;
  const auto ship = oosm::build_ship(model, "Test", 1, 1);
  pdme::PdmeConfig cfg;
  cfg.auto_retest = true;
  pdme::PdmeExecutive pdme(model, cfg);
  net::SimNetwork network;
  pdme.attach_to_network(network);

  std::vector<net::TestCommandMessage> commands;
  network.register_endpoint("dc-1", [&](const net::Message& m) {
    if (net::peek_type(m.payload) == net::MessageType::TestCommand) {
      commands.push_back(net::unwrap_test_command(m.payload));
    }
  });

  net::FailureReport r;
  r.dc = DcId(1);
  r.knowledge_source = KnowledgeSourceId(1);
  r.sensed_object = ship.plants[0].motor;
  r.machine_condition = domain::condition_id(FailureMode::MotorImbalance);
  r.severity = 0.85;  // severe...
  r.belief = 0.6;     // ...but group still carries real unknown mass
  r.timestamp = SimTime::from_seconds(100.0);
  pdme.accept(r);
  network.flush();

  ASSERT_EQ(commands.size(), 1u);
  EXPECT_EQ(commands[0].target, DcId(1));
  EXPECT_EQ(pdme.stats().retests_commanded, 1u);

  // Backoff: an immediate repeat does not re-command.
  r.timestamp = SimTime::from_seconds(200.0);
  pdme.accept(r);
  network.flush();
  EXPECT_EQ(commands.size(), 1u);
}

TEST(AutoRetestTest, CorroboratedConclusionNotRetested) {
  oosm::ObjectModel model;
  const auto ship = oosm::build_ship(model, "Test", 1, 1);
  pdme::PdmeConfig cfg;
  cfg.auto_retest = true;
  pdme::PdmeExecutive pdme(model, cfg);
  net::SimNetwork network;
  pdme.attach_to_network(network);
  network.register_endpoint("dc-1", [](const net::Message&) {});

  // First, a mild report corroborates the mode without tripping the
  // severity threshold...
  net::FailureReport r;
  r.dc = DcId(1);
  r.knowledge_source = KnowledgeSourceId(1);
  r.sensed_object = ship.plants[0].motor;
  r.machine_condition = domain::condition_id(FailureMode::MotorImbalance);
  r.severity = 0.40;
  r.belief = 0.95;
  r.timestamp = SimTime::from_seconds(100.0);
  pdme.accept(r);
  // ...then the severe confirmation arrives into an already-collapsed
  // group: no closer look needed.
  r.knowledge_source = KnowledgeSourceId(3);
  r.severity = 0.85;
  r.timestamp = SimTime::from_seconds(200.0);
  pdme.accept(r);
  EXPECT_EQ(pdme.stats().retests_commanded, 0u);
}

TEST(AutoRetestTest, ClosedLoopThroughShipSystem) {
  ShipSystemConfig cfg;
  cfg.plant_count = 1;
  cfg.pdme.auto_retest = true;
  cfg.dc_template.vibration_period = SimTime::from_seconds(1200);
  ShipSystem ship(cfg);
  ship.chiller(0).faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                                     SimTime(0), 0.95,
                                     plant::GrowthProfile::Step});
  ship.run_until(SimTime::from_hours(1.5));

  // The first severe report commands an extra test, so the DC runs more
  // vibration tests than its periodic schedule alone (4 in 1.5h at 1200s).
  EXPECT_GT(ship.pdme().stats().retests_commanded, 0u);
  EXPECT_GT(ship.concentrator(0).stats().vibration_tests, 4u);
}

// --- DC command handling ------------------------------------------------------

TEST(DcCommandTest, MisroutedCommandIgnored) {
  plant::ChillerSimulator chiller;
  dc::DcConfig cfg;
  cfg.id = DcId(2);
  dc::DataConcentrator dc(cfg,
                          dc::MachineRefs{ObjectId(1), ObjectId(2),
                                          ObjectId(3), ObjectId(4)},
                          chiller);
  net::TestCommandMessage cmd;
  cmd.target = DcId(9);  // someone else's DC
  dc.handle_command(cmd);
  dc.advance_to(SimTime::from_seconds(30));
  EXPECT_EQ(dc.stats().vibration_tests, 0u);

  cmd.target = DcId(2);
  cmd.reason = "unit test";
  dc.handle_command(cmd);
  dc.advance_to(SimTime::from_seconds(60));
  EXPECT_EQ(dc.stats().vibration_tests, 1u);
}

TEST(DcSensorTest, PublishesEveryNthScan) {
  plant::ChillerSimulator chiller;
  dc::DcConfig cfg;
  cfg.process_period = SimTime::from_seconds(60);
  cfg.sensor_publish_every = 5;
  dc::DataConcentrator dc(cfg,
                          dc::MachineRefs{ObjectId(1), ObjectId(2),
                                          ObjectId(3), ObjectId(4)},
                          chiller);
  dc.advance_to(SimTime::from_hours(1.0));  // 60 scans
  const auto batches = dc.drain_sensor_data();
  EXPECT_EQ(batches.size(), 12u);
  ASSERT_FALSE(batches.empty());
  EXPECT_EQ(batches[0].machine, ObjectId(1));
  EXPECT_EQ(batches[0].values.size(), 11u);
  // Drained: second call is empty.
  EXPECT_TRUE(dc.drain_sensor_data().empty());
}

// --- Spatial reasoning (§10.1) -----------------------------------------------

class SpatialTest : public ::testing::Test {
 protected:
  SpatialTest()
      : ship_(oosm::build_ship(model_, "Test", 1, 1)), pdme_(model_) {}

  void report(ObjectId machine, FailureMode mode, double severity,
              double belief, double t = 100.0) {
    net::FailureReport r;
    r.dc = DcId(1);
    r.knowledge_source = KnowledgeSourceId(1);
    r.sensed_object = machine;
    r.machine_condition = domain::condition_id(mode);
    r.severity = severity;
    r.belief = belief;
    r.timestamp = SimTime::from_seconds(t);
    pdme_.accept(r);
  }

  oosm::ObjectModel model_;
  oosm::ShipModel ship_;
  pdme::PdmeExecutive pdme_;
};

TEST_F(SpatialTest, WeakNeighbourDiagnosisDiscounted) {
  const auto& plant = ship_.plants[0];
  // Motor shaking wildly (strong, corroborated)...
  report(plant.motor, FailureMode::MotorImbalance, 0.9, 0.9, 100);
  report(plant.motor, FailureMode::MotorImbalance, 0.9, 0.9, 200);
  // ...and the proximate gearbox shows a weak imbalance-type symptom.
  report(plant.gearbox, FailureMode::ShaftMisalignment, 0.4, 0.3, 150);

  const pdme::SpatialReasoner reasoner;
  const auto refined = reasoner.refine(pdme_);

  bool motor_kept = false, gearbox_discounted = false;
  for (const auto& item : refined) {
    if (item.item.machine == plant.motor) {
      EXPECT_FALSE(item.discounted);
      motor_kept = true;
    }
    if (item.item.machine == plant.gearbox) {
      EXPECT_TRUE(item.discounted);
      EXPECT_EQ(item.attributed_to, plant.motor);
      gearbox_discounted = true;
    }
  }
  EXPECT_TRUE(motor_kept);
  EXPECT_TRUE(gearbox_discounted);
  // The culprit outranks the sympathetic vibration after discounting.
  EXPECT_EQ(refined.front().item.machine, plant.motor);
}

TEST_F(SpatialTest, StrongDiagnosisNotDiscounted) {
  const auto& plant = ship_.plants[0];
  report(plant.motor, FailureMode::MotorImbalance, 0.9, 0.9, 100);
  report(plant.motor, FailureMode::MotorImbalance, 0.9, 0.9, 200);
  // Gearbox conclusion is itself strong: keep it.
  report(plant.gearbox, FailureMode::ShaftMisalignment, 0.8, 0.9, 150);
  report(plant.gearbox, FailureMode::ShaftMisalignment, 0.8, 0.9, 250);

  const pdme::SpatialReasoner reasoner;
  for (const auto& item : reasoner.refine(pdme_)) {
    EXPECT_FALSE(item.discounted);
  }
}

TEST_F(SpatialTest, NonTransmissibleModesUntouched) {
  const auto& plant = ship_.plants[0];
  report(plant.motor, FailureMode::MotorImbalance, 0.9, 0.9, 100);
  report(plant.motor, FailureMode::MotorImbalance, 0.9, 0.9, 200);
  // Bearing envelope tones do not travel like raw imbalance shake.
  report(plant.gearbox, FailureMode::GearMeshWear, 0.4, 0.3, 150);

  const pdme::SpatialReasoner reasoner;
  for (const auto& item : reasoner.refine(pdme_)) {
    if (item.item.machine == plant.gearbox) {
      EXPECT_FALSE(item.discounted);
    }
  }
}

TEST_F(SpatialTest, FlowSuspicionPropagatesDownstream) {
  const auto& plant = ship_.plants[0];
  // Confirmed oil degradation at the compressor.
  report(plant.compressor, FailureMode::OilDegradation, 0.8, 0.9, 100);
  report(plant.compressor, FailureMode::OilDegradation, 0.8, 0.9, 200);

  const pdme::SpatialReasoner reasoner;
  const auto suspicions = reasoner.flow_suspicions(pdme_);
  ASSERT_FALSE(suspicions.empty());
  for (const auto& s : suspicions) {
    EXPECT_EQ(s.source, plant.compressor);
    EXPECT_EQ(s.source_mode, FailureMode::OilDegradation);
    EXPECT_GT(s.suspicion, 0.0);
  }
  // The refrigerant loop reaches condenser and evaporator downstream.
  EXPECT_GE(suspicions.size(), 2u);
}

TEST_F(SpatialTest, WeakFaultGeneratesNoFlowSuspicion) {
  report(ship_.plants[0].compressor, FailureMode::OilDegradation, 0.4, 0.4);
  const pdme::SpatialReasoner reasoner;
  EXPECT_TRUE(reasoner.flow_suspicions(pdme_).empty());
}

// --- Health rollup (§10.1) ----------------------------------------------------

// Two plants so rollup dilution across siblings is observable.
class HealthTest : public ::testing::Test {
 protected:
  HealthTest()
      : ship_(oosm::build_ship(model_, "Test", 1, 2)), pdme_(model_) {}

  void report(ObjectId machine, FailureMode mode, double severity,
              double belief, double t = 100.0) {
    net::FailureReport r;
    r.dc = DcId(1);
    r.knowledge_source = KnowledgeSourceId(1);
    r.sensed_object = machine;
    r.machine_condition = domain::condition_id(mode);
    r.severity = severity;
    r.belief = belief;
    r.timestamp = SimTime::from_seconds(t);
    pdme_.accept(r);
  }

  oosm::ObjectModel model_;
  oosm::ShipModel ship_;
  pdme::PdmeExecutive pdme_;
};

TEST_F(HealthTest, HealthyShipScoresOne) {
  const pdme::HealthRollup rollup;
  EXPECT_DOUBLE_EQ(rollup.health_of(pdme_, ship_.ship), 1.0);
}

TEST_F(HealthTest, PartFailureDegradesAncestors) {
  const auto& plant = ship_.plants[0];
  report(plant.motor, FailureMode::MotorImbalance, 0.9, 0.9, 100);
  report(plant.motor, FailureMode::MotorImbalance, 0.9, 0.9, 200);

  const pdme::HealthRollup rollup;
  const auto health = rollup.compute(pdme_);
  const double motor_h = health.at(plant.motor).rolled;
  const double chiller_h = health.at(plant.chiller).rolled;
  const double ship_h = health.at(ship_.ship).rolled;

  EXPECT_LT(motor_h, 0.3);       // badly degraded part
  EXPECT_LT(chiller_h, 1.0);     // parent suffers...
  EXPECT_GT(chiller_h, motor_h); // ...but less than the part itself
  EXPECT_LT(ship_h, 1.0);        // the ship notices...
  EXPECT_GT(ship_h, chiller_h);  // ...dampened by the healthy sister plant
}

TEST_F(HealthTest, OwnVsRolledDistinguished) {
  const auto& plant = ship_.plants[0];
  report(plant.motor, FailureMode::MotorImbalance, 0.9, 0.9, 100);
  const pdme::HealthRollup rollup;
  const auto health = rollup.compute(pdme_);
  // The chiller has no conclusions of its own, only a sick child.
  EXPECT_DOUBLE_EQ(health.at(plant.chiller).own, 1.0);
  EXPECT_LT(health.at(plant.chiller).rolled, 1.0);
}

TEST_F(HealthTest, RenderTreeMentionsWorstComponent) {
  const auto& plant = ship_.plants[0];
  report(plant.motor, FailureMode::MotorImbalance, 0.9, 0.9, 100);
  const pdme::HealthRollup rollup;
  const std::string tree = rollup.render_tree(pdme_, ship_.ship);
  EXPECT_NE(tree.find("A/C Compressor Motor 1"), std::string::npos);
  EXPECT_NE(tree.find("health"), std::string::npos);
}

// --- Trend projection (§10.1 temporal reasoning) -------------------------------

TEST(TrendTest, FitsLinearDegradation) {
  fusion::TrendProjector trend;
  for (int day = 0; day <= 10; ++day) {
    trend.observe(SimTime::from_days(day), 0.1 + 0.05 * day);
  }
  const auto fit = trend.fit();
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->slope_per_day, 0.05, 1e-9);
  EXPECT_GT(fit->r_squared, 0.999);
}

TEST(TrendTest, ProjectsTimeToFailure) {
  fusion::TrendProjector trend;
  for (int day = 0; day <= 10; ++day) {
    trend.observe(SimTime::from_days(day), 0.1 + 0.05 * day);
  }
  // severity(t) = 0.1 + 0.05 t reaches 1.0 at t = 18; from now (day 10)
  // that's 8 days out.
  const auto ttf = trend.time_to_failure(SimTime::from_days(10));
  ASSERT_TRUE(ttf.has_value());
  EXPECT_NEAR(ttf->days(), 8.0, 0.1);

  const auto prognosis = trend.project(SimTime::from_days(10));
  EXPECT_NEAR(prognosis.probability_at(SimTime::from_days(8.0)), 0.5, 0.01);
}

TEST(TrendTest, FlatOrImprovingTrendsDoNotProject) {
  fusion::TrendProjector trend;
  for (int day = 0; day <= 10; ++day) {
    trend.observe(SimTime::from_days(day), 0.5);
  }
  EXPECT_FALSE(trend.time_to_failure(SimTime::from_days(10)).has_value());

  fusion::TrendProjector improving;
  for (int day = 0; day <= 10; ++day) {
    improving.observe(SimTime::from_days(day), 0.5 - 0.02 * day);
  }
  EXPECT_FALSE(improving.time_to_failure(SimTime::from_days(10)).has_value());
}

TEST(TrendTest, OutOfOrderSamplesHandled) {
  fusion::TrendProjector a, b;
  const double sev[] = {0.1, 0.2, 0.3, 0.4};
  for (int i = 0; i < 4; ++i) a.observe(SimTime::from_days(i), sev[i]);
  for (int i = 3; i >= 0; --i) b.observe(SimTime::from_days(i), sev[i]);
  ASSERT_TRUE(a.fit().has_value());
  ASSERT_TRUE(b.fit().has_value());
  EXPECT_NEAR(a.fit()->slope_per_day, b.fit()->slope_per_day, 1e-12);
}

TEST(TrendTest, UnderSampledTrackAbstains) {
  fusion::TrendProjector trend;
  trend.observe(SimTime::from_days(0), 0.2);
  trend.observe(SimTime::from_days(1), 0.4);
  EXPECT_FALSE(trend.fit().has_value());  // min_points = 3
}

TEST(TrendTest, SlidingWindowForgetsAncientHistory) {
  fusion::TrendConfig cfg;
  cfg.max_points = 8;
  fusion::TrendProjector trend(cfg);
  // Long flat prefix, then a sharp recent ramp: the window must see the
  // ramp, not the average of both regimes.
  for (int day = 0; day < 50; ++day) {
    trend.observe(SimTime::from_days(day), 0.1);
  }
  for (int day = 50; day < 58; ++day) {
    trend.observe(SimTime::from_days(day), 0.1 + 0.1 * (day - 50));
  }
  EXPECT_EQ(trend.history_size(), 8u);
  const auto fit = trend.fit();
  ASSERT_TRUE(fit.has_value());
  EXPECT_GT(fit->slope_per_day, 0.05);
}

}  // namespace
}  // namespace mpros
