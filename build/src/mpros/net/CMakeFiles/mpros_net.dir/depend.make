# Empty dependencies file for mpros_net.
# This may be replaced when dependencies are built.
