# Empty compiler generated dependencies file for bench_sbfr.
# This may be replaced when dependencies are built.
