// Domain catalog tests: failure modes, logical groups, equipment signatures.

#include <gtest/gtest.h>

#include <set>

#include "mpros/domain/equipment.hpp"
#include "mpros/domain/failure_modes.hpp"

namespace mpros::domain {
namespace {

TEST(FailureModeTest, TwelveModesAsInPaperFmea) {
  EXPECT_EQ(all_failure_modes().size(), kFailureModeCount);
  EXPECT_EQ(kFailureModeCount, 12u);
}

TEST(FailureModeTest, EveryModeHasExactlyOneGroup) {
  std::size_t total = 0;
  for (std::size_t g = 0; g < kLogicalGroupCount; ++g) {
    const auto group = static_cast<LogicalGroup>(g);
    for (const FailureMode m : modes_in_group(group)) {
      EXPECT_EQ(logical_group(m), group);
      ++total;
    }
  }
  EXPECT_EQ(total, kFailureModeCount);
}

TEST(FailureModeTest, GroupsAreNonTrivial) {
  // §5.3's examples: electrical failures form one group; there can be
  // several failures at once across groups.
  EXPECT_EQ(logical_group(FailureMode::RotorBarDefect),
            LogicalGroup::Electrical);
  EXPECT_EQ(logical_group(FailureMode::StatorWindingFault),
            LogicalGroup::Electrical);
  EXPECT_NE(logical_group(FailureMode::RotorBarDefect),
            logical_group(FailureMode::MotorImbalance));
}

TEST(FailureModeTest, ConditionIdRoundTrip) {
  for (const FailureMode m : all_failure_modes()) {
    const ConditionId id = condition_id(m);
    EXPECT_TRUE(id.valid());
    EXPECT_EQ(failure_mode(id), m);
  }
}

TEST(FailureModeTest, ConditionIdsUnique) {
  std::set<ConditionId> ids;
  for (const FailureMode m : all_failure_modes()) ids.insert(condition_id(m));
  EXPECT_EQ(ids.size(), kFailureModeCount);
}

TEST(FailureModeTest, NamesAndTextNonEmpty) {
  for (const FailureMode m : all_failure_modes()) {
    EXPECT_STRNE(to_string(m), "?");
    EXPECT_FALSE(condition_text(m).empty());
  }
  // §5.5 names these conditions explicitly.
  EXPECT_EQ(condition_text(FailureMode::MotorImbalance), "motor imbalance");
  EXPECT_EQ(condition_text(FailureMode::RotorBarDefect),
            "motor rotor bar problem");
  EXPECT_EQ(condition_text(FailureMode::BearingHousingLooseness),
            "pump bearing housing looseness");
}

TEST(SignatureTest, KinematicsConsistent) {
  const MachineSignature sig = navy_chiller_signature();
  EXPECT_GT(sig.shaft_hz, 0.0);
  // Speed increaser: high-speed shaft faster than the motor.
  EXPECT_GT(sig.high_speed_shaft_hz(), sig.shaft_hz);
  EXPECT_NEAR(sig.gear_mesh_hz(), sig.shaft_hz * sig.gear_teeth_in, 1e-9);
  EXPECT_NEAR(sig.vane_pass_hz(),
              sig.high_speed_shaft_hz() * sig.impeller_vanes, 1e-9);
}

TEST(SignatureTest, SlipScalesWithLoad) {
  const MachineSignature sig = navy_chiller_signature();
  EXPECT_NEAR(sig.slip_hz(0.0), 0.0, 1e-12);
  EXPECT_GT(sig.slip_hz(1.0), 0.0);
  EXPECT_GT(sig.slip_hz(1.0), sig.slip_hz(0.5));
  // Full-load slip for a 1780 rpm 4-pole motor on 60 Hz is 30 - 29.6 Hz.
  EXPECT_NEAR(sig.slip_hz(1.0), 60.0 / 2 - sig.shaft_hz, 1e-9);
}

TEST(SignatureTest, BearingOrdersPhysical) {
  const BearingRates b = navy_chiller_signature().bearing;
  EXPECT_GT(b.bpfi, b.bpfo);  // inner race tone above outer race
  EXPECT_LT(b.ftf, 0.5);      // cage slower than shaft
  EXPECT_GT(b.bpfo, 1.0);
}

TEST(NominalsTest, PhysicallyOrdered) {
  const ProcessNominals n = navy_chiller_nominals();
  EXPECT_GT(n.cond_pressure_kpa, n.evap_pressure_kpa);
  EXPECT_GT(n.chilled_water_return_c, n.chilled_water_supply_c);
  EXPECT_GT(n.motor_winding_temp_c, n.bearing_temp_c);
}

TEST(EquipmentKindTest, AllNamed) {
  for (int k = 0; k <= static_cast<int>(EquipmentKind::KnowledgeSource);
       ++k) {
    EXPECT_STRNE(to_string(static_cast<EquipmentKind>(k)), "?");
  }
}

}  // namespace
}  // namespace mpros::domain
