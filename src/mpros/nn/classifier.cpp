#include "mpros/nn/classifier.hpp"

#include <algorithm>
#include <cmath>

#include "mpros/common/assert.hpp"
#include "mpros/dsp/cepstrum.hpp"
#include "mpros/dsp/dct.hpp"
#include "mpros/dsp/spectrum.hpp"
#include "mpros/dsp/stats.hpp"
#include "mpros/wavelet/features.hpp"

namespace mpros::nn {

std::size_t wnn_label(std::optional<domain::FailureMode> mode) {
  if (!mode) return 0;
  return 1 + static_cast<std::size_t>(*mode);
}

std::optional<domain::FailureMode> wnn_mode(std::size_t label) {
  MPROS_EXPECTS(label < kWnnClassCount);
  if (label == 0) return std::nullopt;
  return static_cast<domain::FailureMode>(label - 1);
}

WnnClassifier::WnnClassifier(WnnConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  const std::size_t dim = feature_count();
  net_.add_wavelet(dim, cfg_.wavelons, rng_);
  net_.add_dense(cfg_.wavelons, kWnnClassCount, Activation::Linear, rng_);
}

std::size_t WnnClassifier::feature_count() const {
  // 4 statistics + 2 cepstral + dct + (wavelet levels + 1 approx + entropy)
  // + 3 context values.
  return 4 + 2 + cfg_.dct_coeffs + (cfg_.wavelet_levels + 2) + 3;
}

std::vector<double> WnnClassifier::features(std::span<const double> waveform,
                                            double sample_rate_hz,
                                            const WnnContext& ctx) const {
  MPROS_EXPECTS(waveform.size() >= (std::size_t{1} << cfg_.wavelet_levels));
  std::vector<double> f;
  f.reserve(feature_count());

  // Statistics: peak amplitude and standard deviation per §6.2, plus crest
  // and kurtosis which the same statistics pass yields for free.
  const dsp::Moments m = dsp::moments(waveform);
  f.push_back(dsp::peak_abs(waveform));
  f.push_back(m.stddev);
  f.push_back(dsp::crest_factor(waveform));
  f.push_back(m.kurtosis);

  // Per-thread reusable DSP outputs (training sweeps thousands of windows
  // through here; the cached zero-allocation path keeps that loop off the
  // allocator).
  static thread_local std::vector<double> ceps;
  static thread_local dsp::Spectrum spec;
  static thread_local std::vector<double> log_spec;

  // Cepstrum: dominant quefrency in the 2..200 ms band and its strength.
  dsp::real_cepstrum(waveform, 0, ceps);
  const double q = dsp::dominant_quefrency(ceps, sample_rate_hz, 0.002, 0.2);
  f.push_back(q * 1000.0);  // ms
  double q_strength = 0.0;
  if (q > 0.0) {
    const auto bin = static_cast<std::size_t>(q * sample_rate_hz);
    if (bin < ceps.size()) q_strength = ceps[bin];
  }
  f.push_back(q_strength);

  // DCT coefficients of the log amplitude spectrum (spectral shape).
  dsp::amplitude_spectrum(waveform, sample_rate_hz, {}, spec);
  log_spec.resize(spec.amplitude.size());
  for (std::size_t i = 0; i < log_spec.size(); ++i) {
    log_spec[i] = std::log10(spec.amplitude[i] + 1e-9);
  }
  const std::vector<double> dct =
      dsp::dct2_truncated(log_spec, cfg_.dct_coeffs);
  f.insert(f.end(), dct.begin(), dct.end());

  // Wavelet map: per-scale relative energies + entropy. Truncate the window
  // to a multiple of 2^levels.
  const std::size_t block = std::size_t{1} << cfg_.wavelet_levels;
  const std::size_t usable = (waveform.size() / block) * block;
  static thread_local std::vector<double> wmap;
  wavelet::wavelet_feature_vector(waveform.subspan(0, usable),
                                  wavelet::Family::Db4, cfg_.wavelet_levels,
                                  wmap);
  f.insert(f.end(), wmap.begin(), wmap.end());

  // Context: temperature, speed, mass-proxy (load), per the paper's list.
  f.push_back(ctx.bearing_temp_c);
  f.push_back(ctx.shaft_hz);
  f.push_back(ctx.load_fraction);

  MPROS_ENSURES(f.size() == feature_count());
  return f;
}

TrainStats WnnClassifier::train(std::span<const LabelledWindow> windows) {
  MPROS_EXPECTS(!windows.empty());
  std::vector<Example> examples;
  examples.reserve(windows.size());
  for (const LabelledWindow& w : windows) {
    MPROS_EXPECTS(w.label < kWnnClassCount);
    examples.push_back(
        Example{features(w.waveform, w.sample_rate_hz, w.context), w.label});
  }
  const TrainStats stats = net_.train(examples, cfg_.train, rng_);
  trained_ = true;
  return stats;
}

std::vector<double> WnnClassifier::probabilities(
    std::span<const double> waveform, double sample_rate_hz,
    const WnnContext& ctx) {
  MPROS_EXPECTS(trained_);
  return net_.predict(features(waveform, sample_rate_hz, ctx));
}

std::vector<rules::Diagnosis> WnnClassifier::diagnose(
    std::span<const double> waveform, double sample_rate_hz,
    const WnnContext& ctx, const rules::BelievabilityTable& beliefs,
    double threshold) {
  const std::vector<double> p = probabilities(waveform, sample_rate_hz, ctx);
  std::vector<rules::Diagnosis> out;
  for (std::size_t label = 1; label < p.size(); ++label) {
    if (p[label] < threshold) continue;
    const domain::FailureMode mode = *wnn_mode(label);

    rules::Diagnosis d;
    d.mode = mode;
    // The network gives a class posterior, not a degradation level; treat
    // the posterior as a moderate-band severity proxy so strong detections
    // escalate (documented substitution; the DLI engine owns fine-grained
    // severity).
    d.severity = std::clamp(0.25 + 0.5 * p[label], 0.0, 0.9);
    d.gradient = rules::gradient_of(d.severity);
    d.belief = p[label] * beliefs.belief(mode);
    d.explanation = std::string("WNN classification: ") +
                    domain::condition_text(mode);
    d.recommendation = "Correlate with vibration expert system findings.";
    d.prognosis = rules::default_prognosis(d.severity);
    out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(),
            [](const rules::Diagnosis& a, const rules::Diagnosis& b) {
              return a.belief > b.belief;
            });
  return out;
}

}  // namespace mpros::nn
