# Empty compiler generated dependencies file for mpros_mpros.
# This may be replaced when dependencies are built.
