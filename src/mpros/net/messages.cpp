#include "mpros/net/messages.hpp"

#include "mpros/common/assert.hpp"
#include "mpros/net/codec.hpp"

namespace mpros::net {

const char* to_string(MessageType t) {
  switch (t) {
    case MessageType::FailureReportMsg: return "failure-report";
    case MessageType::SensorData: return "sensor-data";
    case MessageType::TestCommand: return "test-command";
  }
  return "?";
}

MessageType peek_type(std::span<const std::uint8_t> bytes) {
  MPROS_EXPECTS(!bytes.empty());
  return static_cast<MessageType>(bytes[0]);
}

std::vector<std::uint8_t> wrap(const FailureReport& r) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(MessageType::FailureReportMsg));
  const std::vector<std::uint8_t> body = serialize(r);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::uint8_t> wrap(const SensorDataMessage& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageType::SensorData));
  w.u64(m.dc.value());
  w.u64(m.machine.value());
  w.i64(m.timestamp.micros());
  w.u32(static_cast<std::uint32_t>(m.values.size()));
  for (const auto& [key, value] : m.values) {
    w.str(key);
    w.f64(value);
  }
  return w.take();
}

std::vector<std::uint8_t> wrap(const TestCommandMessage& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageType::TestCommand));
  w.u64(m.target.value());
  w.u8(static_cast<std::uint8_t>(m.command));
  w.str(m.reason);
  return w.take();
}

FailureReport unwrap_report(std::span<const std::uint8_t> bytes) {
  MPROS_EXPECTS(peek_type(bytes) == MessageType::FailureReportMsg);
  return deserialize_report(bytes.subspan(1));
}

SensorDataMessage unwrap_sensor_data(std::span<const std::uint8_t> bytes) {
  MPROS_EXPECTS(peek_type(bytes) == MessageType::SensorData);
  Reader r(bytes.subspan(1));
  SensorDataMessage m;
  m.dc = DcId(r.u64());
  m.machine = ObjectId(r.u64());
  m.timestamp = SimTime(r.i64());
  const std::uint32_t n = r.u32();
  m.values.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = r.str();
    const double value = r.f64();
    m.values.emplace_back(std::move(key), value);
  }
  MPROS_EXPECTS(r.done());
  return m;
}

TestCommandMessage unwrap_test_command(std::span<const std::uint8_t> bytes) {
  MPROS_EXPECTS(peek_type(bytes) == MessageType::TestCommand);
  Reader r(bytes.subspan(1));
  TestCommandMessage m;
  m.target = DcId(r.u64());
  m.command = static_cast<TestCommandMessage::Command>(r.u8());
  m.reason = r.str();
  MPROS_EXPECTS(r.done());
  return m;
}

}  // namespace mpros::net
