#pragma once
// The Prognostic/Diagnostic Monitoring Engine (paper §3.1).
//
// "The PDME is the logical center of the MPROS system. Diagnostic and
// prognostic conclusions are collected from DC-resident algorithms ...
// Fusion of conflicting and reinforcing source conclusions is performed to
// form a prioritized list for the use of maintenance personnel."
//
// Report flow implements §5.1's four-step format literally:
//  1. arriving reports are posted into the OOSM (as Report objects that
//     RefersTo the sensed machine),
//  2. the OOSM's event model notifies Knowledge Fusion,
//  3. KF reads the new report and fuses diagnostics (Dempster-Shafer per
//     logical group) and prognostics (conservative envelope),
//  4. fused conclusions are posted back to the OOSM and drive the browser.
//
// Two execution modes (PdmeConfig::shard_count):
//  - 0 (default): the historical inline executive — everything runs on the
//    driver thread, accept() posts and fuses synchronously.
//  - N >= 1: sharded ingestion (E18). accept() routes the report to one of
//    N fusion workers by machine hash through a bounded backpressure queue
//    and returns immediately; OOSM posts and retest commands are deferred
//    until synchronize(), which quiesces the workers and replays deferred
//    work in global arrival order — so fused state, report objects and
//    stats are byte-identical to an inline run over the same stream.
//    Queries are safe at any time (they take the shard locks) but are only
//    snapshot-consistent after synchronize().

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mpros/net/messages.hpp"
#include "mpros/net/network.hpp"
#include "mpros/net/reliable.hpp"
#include "mpros/oosm/object_model.hpp"
#include "mpros/pdme/fusion_core.hpp"

namespace mpros::pdme {

class ShardExecutor;

/// Watchdog verdict on one DC's report stream.
enum class DcLiveness : std::uint8_t { Alive = 0, Stale, Lost };

[[nodiscard]] const char* to_string(DcLiveness liveness);

struct DcHealth {
  DcLiveness liveness = DcLiveness::Alive;
  SimTime last_heard;           ///< newest report/heartbeat/sensor arrival
  std::uint64_t heartbeats = 0;
};

class PdmeExecutive {
 public:
  /// `model` must outlive the executive. The executive subscribes to OOSM
  /// events so that report objects posted by anyone (not just accept())
  /// reach knowledge fusion (§4.5).
  explicit PdmeExecutive(oosm::ObjectModel& model, PdmeConfig cfg = {});
  ~PdmeExecutive();

  PdmeExecutive(const PdmeExecutive&) = delete;
  PdmeExecutive& operator=(const PdmeExecutive&) = delete;

  /// What one submit() span did. Counters are per report, so a caller can
  /// conserve its own ledger: accepted + duplicates == span size.
  struct SubmitOutcome {
    std::size_t accepted = 0;    ///< reports handed to fusion (or queued)
    std::size_t duplicates = 0;  ///< reports dropped as retransmissions
    /// Inline mode only: the last report object posted (nullopt when the
    /// whole span was duplicate, or in sharded mode where posts defer to
    /// synchronize()).
    std::optional<ObjectId> last_object;
  };

  /// THE ingest entry point: every report path — single report, reliable
  /// envelope, decoded ReportBatch, wire adapter — funnels through here.
  /// Each contiguous run sharing a nonzero (dc, sequence) is one sequenced
  /// datagram: a duplicate run is dropped whole (the retransmitted batch
  /// was already fused), a fresh run is ingested and commits exactly one
  /// sequence number on the DC's reliable stream. Elements with
  /// sequence == 0 are unsequenced bare reports. Acks are the wire
  /// adapter's job — submit() itself never touches the network.
  SubmitOutcome submit(std::span<const net::ReportEnvelope> reports);

  /// Step 1 of §5.1: post a report into the OOSM (and let the event chain
  /// run fusion). A one-element unsequenced span through submit(). Returns
  /// the created report object's id; nullopt if the report was a duplicate
  /// retransmission — or, in sharded mode, always nullopt: the post is
  /// deferred to synchronize().
  std::optional<ObjectId> accept(const net::FailureReport& report);

  /// Post a sensor-data batch: values land as properties on the machine's
  /// OOSM object (the §1 open-interface flow; PDME-resident algorithms
  /// subscribe to the resulting OOSM events).
  void accept(const net::SensorDataMessage& data);

  /// Post a DC liveness beacon delivered at `at`: refreshes the watchdog,
  /// counts the beat, and checks the advertised tail sequence for loss the
  /// envelope stream alone cannot reveal. Replay uses this to rebuild the
  /// live run's DC-health ledger from recorded frames.
  void accept(const net::HeartbeatMessage& hb, SimTime at);

  /// Sharded mode: quiesce the fusion workers, then post the deferred
  /// report objects and send the deferred retest commands in global arrival
  /// order (the snapshot-consistent aggregation barrier). No-op inline.
  void synchronize();

  /// Record that any datagram from `dc` arrived at `at` (restores a
  /// Stale/Lost DC to Alive). The network adapter calls this for every
  /// well-formed arrival; replay calls it per recorded frame.
  void note_dc_alive(DcId dc, SimTime at);

  /// Wire adapter: register this executive as the "pdme" endpoint on the
  /// simulated ship network. Malformed payloads are counted, not fatal.
  void attach_to_network(net::SimNetwork& network,
                         const std::string& endpoint_name = "pdme");

  /// Declare a DC the watchdog must supervise from `since` on; without
  /// this, a DC partitioned before its first datagram would never be
  /// missed. The assembler registers every DC at construction.
  void expect_dc(DcId dc, SimTime since);

  /// Run the liveness watchdog at `now`: DCs silent past the configured
  /// missed-interval thresholds transition to Stale/Lost (logged).
  void update_liveness(SimTime now);

  [[nodiscard]] DcLiveness dc_liveness(DcId dc) const;
  [[nodiscard]] const std::map<std::uint64_t, DcHealth>& dc_health() const {
    return dc_health_;
  }

  /// Per-DC reliable-stream state (gap bookkeeping, cumulative acks).
  [[nodiscard]] const net::ReliableReceiver& receiver() const {
    return receiver_;
  }

  /// Control plane: stamp the next per-DC revision on `settings` and queue
  /// the command on that DC's reliable command stream (acked, retransmitted
  /// with backoff by sweep_commands()) so a partitioned or restarting DC
  /// still converges on the newest configuration. Returns the stamped
  /// revision. Works before attach_to_network(): the command waits in the
  /// retransmit window until a sweep finds the wire.
  std::uint64_t send_command(
      DcId dc, std::vector<std::pair<std::string, double>> settings,
      std::string reason, SimTime at);

  /// Drive the per-DC command retransmit windows at `now` (the assembler
  /// calls this once per step; the PDME has no scheduler of its own).
  void sweep_commands(SimTime now);

  /// Command-stream sender for `dc` (nullptr before the first
  /// send_command to it). Tests assert window drain / backoff through it.
  [[nodiscard]] const net::ReliableSender* command_stream(DcId dc) const;

  /// Compatibility alias — the record type moved to fusion_core.hpp.
  using SensorFaultRecord = pdme::SensorFaultRecord;
  [[nodiscard]] std::vector<SensorFaultRecord> sensor_faults(
      bool active_only = true) const;

  /// The prioritized list (§3.1), most urgent first.
  [[nodiscard]] std::vector<MaintenanceItem> prioritized_list() const;
  [[nodiscard]] std::vector<MaintenanceItem> prioritized_list(
      ObjectId machine) const;

  /// Fused prognostic curve for one (machine, mode), if any prognostic
  /// reports arrived.
  [[nodiscard]] std::optional<fusion::PrognosticVector> prognosis(
      ObjectId machine, domain::FailureMode mode) const;

  /// §10.1: the data-driven prognostic curve projected from the severity
  /// trend of this mode's reports (horizons relative to the latest report).
  [[nodiscard]] fusion::PrognosticVector trend_prognosis(
      ObjectId machine, domain::FailureMode mode) const;

  /// Dempster-Shafer state for a machine's logical group.
  [[nodiscard]] fusion::GroupState group_state(
      ObjectId machine, domain::LogicalGroup group) const;

  /// Reports accumulated for one machine, arrival order.
  [[nodiscard]] std::vector<net::FailureReport> reports_for(
      ObjectId machine) const;

  /// Every field is a monotonic counter (gauges — queue depths, inflight
  /// windows — live in the telemetry registry, not here). Report-level and
  /// datagram-level counters are distinct: envelopes_accepted /
  /// duplicate_envelopes count sequenced datagrams (a whole batch is one),
  /// reports_accepted / duplicates_dropped count the reports inside them.
  struct Stats {
    std::uint64_t reports_accepted = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t malformed_dropped = 0;
    std::uint64_t fusion_updates = 0;
    std::uint64_t sensor_batches = 0;
    std::uint64_t retests_commanded = 0;
    std::uint64_t envelopes_accepted = 0;
    /// Sequenced datagrams dropped whole as retransmissions (each may have
    /// carried many reports — those land in duplicates_dropped).
    std::uint64_t duplicate_envelopes = 0;
    /// ReportBatch datagrams decoded off the wire, and the reports they
    /// carried (batched_reports / batches_received = realized batch size).
    std::uint64_t batches_received = 0;
    std::uint64_t batched_reports = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t gaps_detected = 0;
    std::uint64_t heartbeats_received = 0;
    std::uint64_t sensor_fault_reports = 0;
    std::uint64_t liveness_transitions = 0;  ///< Alive<->Stale<->Lost edges
    /// Reports that hit a full shard queue: evicted under DropOldest
    /// (lost — reports_accepted + queue_full conserves the submitted
    /// count), delayed under Block.
    std::uint64_t queue_full = 0;
    std::uint64_t commands_sent = 0;  ///< control-plane commands queued
    std::uint64_t command_acks = 0;   ///< DC acks routed to command streams

    friend bool operator==(const Stats&, const Stats&) = default;
  };
  /// Merged snapshot: driver-side counters plus every shard core's, taken
  /// under the shard locks (by value — the shards keep moving underneath).
  [[nodiscard]] Stats snapshot() const;
  /// Deprecated: thin shim for snapshot().
  [[nodiscard]] Stats stats() const { return snapshot(); }

  [[nodiscard]] oosm::ObjectModel& model() { return model_; }
  [[nodiscard]] const oosm::ObjectModel& model() const { return model_; }

  /// Number of fusion shards (0 = inline executive).
  [[nodiscard]] std::size_t shard_count() const;

  /// Forget everything known about a machine (post-maintenance reset).
  void reset_machine(ObjectId machine);

  /// Disaster recovery (§4.9 "long-term unattended operation"): rebuild
  /// fusion state from the Report objects already persisted in the OOSM.
  /// Call on a freshly constructed executive over a reloaded model; reports
  /// are re-fused in creation order — the order the live executive posted
  /// them, which Persistence::load preserves — so the Dempster-Shafer
  /// floating-point folds replay bit-identically (a timestamp sort would
  /// reorder same-stamp reports and perturb the folds at the last ulp).
  /// Returns how many were recovered.
  std::size_t rebuild_from_model();

  /// Restore one DC's watchdog record from persisted state (crash
  /// recovery only — the browser renders last-heard/heartbeats, so a
  /// recovered ship must report the values the crashed one had).
  void restore_dc_health(DcId dc, const DcHealth& health);

  /// Seed the §5.8 command-revision counter for one DC (crash recovery
  /// only): the DC rejects any revision at or below its applied one, so a
  /// recovered PDME must resume stamping past the last revision the
  /// crashed run durably applied. Keeps the larger of the two.
  void restore_command_revision(DcId dc, std::uint64_t revision);

 private:
  using ModeKey = std::pair<std::uint64_t, domain::FailureMode>;

  void on_oosm_event(const oosm::OosmEvent& event);
  [[nodiscard]] net::FailureReport reconstruct_report(ObjectId object) const;
  /// Hand one already-deduplicated-at-datagram-level run to fusion:
  /// sharded, one submit_span; inline, per-report dedup + post + fuse.
  std::optional<ObjectId> ingest(std::span<const net::ReportEnvelope> run,
                                 bool needs_post);
  /// Inline mode: fuse on the driver thread, then apply retest candidates.
  void fuse_local(const net::FailureReport& report);
  /// Backoff-filter and send one deferred retest command.
  void send_retest(const PendingRetest& pending);
  template <typename F>
  void visit_cores(F&& f) const;
  ObjectId post_report_object(const net::FailureReport& report);

  oosm::ObjectModel& model_;
  PdmeConfig cfg_;
  net::SimNetwork* network_ = nullptr;  // set by attach_to_network
  std::string endpoint_name_;
  std::atomic<bool> retest_enabled_{false};  // mirrors network_ for workers
  std::map<ModeKey, SimTime> last_retest_;
  oosm::ObjectModel::SubscriptionId subscription_;
  bool posting_ = false;  // re-entrancy guard while we create objects

  // Exactly one of these is live, per cfg_.shard_count.
  std::unique_ptr<FusionCore> inline_core_;
  std::unique_ptr<ShardExecutor> shards_;

  std::uint64_t order_counter_ = 0;  ///< global arrival order (driver thread)
  /// Wire-decode arena: batch datagrams decode into this vector, reusing
  /// its slots (and their strings/vectors) across datagrams so steady-state
  /// ingest performs no per-report allocation in the decoder.
  std::vector<net::ReportEnvelope> decode_arena_;
  net::ReliableReceiver receiver_;
  /// Control plane: one reliable command stream + revision counter per DC
  /// (unique_ptr because ReliableSender pins a mutex).
  std::map<std::uint64_t, std::unique_ptr<net::ReliableSender>>
      command_senders_;
  std::map<std::uint64_t, std::uint64_t> command_revisions_;
  std::map<std::uint64_t, DcHealth> dc_health_;  // by DcId value
  Stats stats_;  ///< driver-side fields only; stats() merges the cores' in
};

}  // namespace mpros::pdme
