#include "mpros/fleet/fleet_sim.hpp"

#include <algorithm>
#include <cstdio>

#include "mpros/common/assert.hpp"
#include "mpros/common/rng.hpp"

namespace mpros::fleet {

FleetSim::FleetSim(FleetSimConfig cfg)
    : cfg_(std::move(cfg)), shore_(cfg_.shore), server_(cfg_.server) {
  MPROS_EXPECTS(cfg_.ship_count >= 1);
  // The shore watchdog must pace itself by the cadence hulls actually hold.
  MPROS_EXPECTS(cfg_.server.summary_interval.micros() ==
                cfg_.ship_template.uplink.summary_period.micros());
  server_.attach_to_network(shore_, "fleet");

  for (std::size_t k = 0; k < cfg_.ship_count; ++k) {
    ShipSystemConfig ship_cfg = cfg_.ship_template;
    ship_cfg.uplink.enabled = true;
    ship_cfg.uplink.ship = ShipId(k + 1);
    char name[32];
    std::snprintf(name, sizeof name, "Hull-%02zu", k + 1);
    ship_cfg.uplink.name = name;
    ship_cfg.uplink.endpoint.clear();  // "hull-<k+1>"
    ship_cfg.seed = splitmix64(cfg_.seed ^ ((k + 1) * 0x9E3779B9));
    if (ship_cfg.worker_threads == 0) {
      // N hulls already fan out across the host; per-ship pools of
      // hardware_concurrency would oversubscribe it N-fold.
      ship_cfg.worker_threads = 1;
    }
    ships_.push_back(std::make_unique<ShipSystem>(ship_cfg));

    ShipSystem* ship_ptr = ships_.back().get();
    shore_.register_endpoint(
        ship_ptr->uplink_endpoint(),
        [ship_ptr](const net::Message& msg) {
          ship_ptr->handle_uplink_wire(msg);
        });
    server_.expect_ship(ShipId(k + 1), name, SimTime(0));
  }
}

ShipSystem& FleetSim::ship(std::size_t index) {
  MPROS_EXPECTS(index < ships_.size());
  return *ships_[index];
}

std::size_t FleetSim::advance_to(SimTime t) {
  MPROS_EXPECTS(t >= now_);
  // Hull order is fixed, so the shore send schedule — and with it the
  // seeded loss/duplication trace — is deterministic run to run.
  for (auto& ship : ships_) {
    ship->advance_to(t);
    for (ShipSystem::UplinkDatagram& dgram : ship->drain_uplink()) {
      shore_.send(ship->uplink_endpoint(), "fleet", std::move(dgram.payload),
                  dgram.at);
    }
  }
  now_ = t;
  const std::size_t delivered = shore_.advance_to(now_);
  server_.publish(now_);
  return delivered;
}

std::size_t FleetSim::run_until(SimTime end, SimTime step) {
  MPROS_EXPECTS(step.micros() > 0);
  std::size_t delivered = 0;
  while (now_ < end) {
    delivered += advance_to(std::min(end, now_ + step));
  }
  return delivered;
}

}  // namespace mpros::fleet
