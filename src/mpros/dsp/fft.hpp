#pragma once
// Radix-2 FFT.
//
// The DC's "Crystal Instruments PCMCIA spectrum analyzer" (paper Fig 5) is
// modelled in software on top of this transform. FftPlan precomputes twiddle
// factors and the bit-reversal permutation for a fixed power-of-two size so
// the steady-state acquisition loop does no allocation.

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace mpros::dsp {

using Complex = std::complex<double>;

[[nodiscard]] constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
[[nodiscard]] std::size_t next_power_of_two(std::size_t n);

/// Precomputed in-place FFT for one size. Construction builds the
/// bit-reversal permutation and twiddle table (O(n log n)); steady-state
/// callers should obtain plans from PlanCache (plan_cache.hpp) so that cost
/// is paid once per process, not per acquisition.
class FftPlan {
 public:
  /// `n` must be a power of two >= 2.
  explicit FftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// In-place forward DFT: x[k] = sum_j x[j] exp(-2*pi*i*j*k/n).
  /// `x` is caller-owned scratch of exactly size() entries; no allocation.
  void forward(std::span<Complex> x) const;

  /// In-place inverse DFT (includes the 1/n normalization).
  void inverse(std::span<Complex> x) const;

 private:
  void transform(std::span<Complex> x, bool invert) const;

  std::size_t n_;
  std::vector<std::size_t> bit_reverse_;
  std::vector<Complex> twiddle_;          // forward twiddles, n/2 entries
};

/// Real-input FFT plan: packs n reals into an n/2-point complex FFT and
/// post-splits, halving butterfly work for the dominant real-signal case.
/// All transform methods take caller-owned scratch and never allocate.
class RealFftPlan {
 public:
  /// `n` (number of real samples) must be a power of two >= 4.
  explicit RealFftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }
  /// Output bins of the half spectrum: n/2 + 1 (DC .. Nyquist inclusive).
  [[nodiscard]] std::size_t bins() const { return n_ / 2 + 1; }
  /// Complex scratch entries needed by forward()/inverse(): n/2.
  [[nodiscard]] std::size_t scratch_size() const { return n_ / 2; }

  /// Forward transform of a real signal into its half spectrum
  /// X[0..n/2]; the full spectrum follows from X[n-k] = conj(X[k]).
  /// `x.size()` may be <= n; missing samples are treated as zero padding.
  /// `half` must hold >= bins() entries, `scratch` >= scratch_size().
  void forward(std::span<const double> x, std::span<Complex> half,
               std::span<Complex> scratch) const;

  /// Inverse of a conjugate-symmetric half spectrum (bins() entries) back
  /// to n real samples. `x` must hold >= n entries.
  void inverse(std::span<const Complex> half, std::span<double> x,
               std::span<Complex> scratch) const;

 private:
  std::size_t n_;
  FftPlan half_plan_;                    // n/2-point complex plan
  std::vector<Complex> split_twiddle_;   // exp(-2*pi*i*k/n), k = 0..n/2
};

/// One-shot forward FFT of a real signal. Returns the full complex spectrum
/// of length n (power of two; input is zero-padded if shorter).
[[nodiscard]] std::vector<Complex> fft_real(std::span<const double> x,
                                            std::size_t n = 0);

/// One-shot inverse of a full complex spectrum back to a complex signal.
[[nodiscard]] std::vector<Complex> ifft(std::span<const Complex> spectrum);

/// One-shot real-input FFT via the packed half-size path. Returns the half
/// spectrum (n/2 + 1 bins); n defaults to the next power of two >= max(4,
/// x.size()). Uses the process-wide PlanCache and per-thread scratch.
[[nodiscard]] std::vector<Complex> rfft(std::span<const double> x,
                                        std::size_t n = 0);

/// One-shot inverse of an rfft()-style half spectrum ((n/2)+1 bins) back to
/// n real samples.
[[nodiscard]] std::vector<double> irfft(std::span<const Complex> half);

}  // namespace mpros::dsp
