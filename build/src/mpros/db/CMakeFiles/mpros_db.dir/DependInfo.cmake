
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpros/db/database.cpp" "src/mpros/db/CMakeFiles/mpros_db.dir/database.cpp.o" "gcc" "src/mpros/db/CMakeFiles/mpros_db.dir/database.cpp.o.d"
  "/root/repo/src/mpros/db/table.cpp" "src/mpros/db/CMakeFiles/mpros_db.dir/table.cpp.o" "gcc" "src/mpros/db/CMakeFiles/mpros_db.dir/table.cpp.o.d"
  "/root/repo/src/mpros/db/value.cpp" "src/mpros/db/CMakeFiles/mpros_db.dir/value.cpp.o" "gcc" "src/mpros/db/CMakeFiles/mpros_db.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpros/common/CMakeFiles/mpros_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
