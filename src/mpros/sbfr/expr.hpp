#pragma once
// Expression / action builders that compile to SBFR bytecode.
//
// Machines are authored in C++ with a small DSL and compiled to the byte
// images that the interpreter executes (and that the net layer can ship to a
// DC). Example, the paper's "Current Increase & ∆T <= 4":
//
//   Expr c = Expr::delta(0) > 0.5 && Expr::dt() <= 4.0;

#include <cstdint>
#include <vector>

#include "mpros/sbfr/bytecode.hpp"

namespace mpros::sbfr {

/// An expression whose value is computed on the VM stack.
class Expr {
 public:
  /// Literal constant (stored as float32 in the image).
  static Expr constant(double v);
  /// Current sample on an input channel.
  static Expr input(std::uint8_t channel);
  /// Current minus previous sample on a channel (discrete derivative).
  static Expr delta(std::uint8_t channel);
  /// This machine's local variable.
  static Expr local(std::uint8_t index);
  /// Status register of machine `m` (readable across machines, per paper).
  static Expr status(std::uint8_t machine);
  /// Current state index of machine `m`.
  static Expr state_of(std::uint8_t machine);
  /// Ticks since this machine entered its current state (the paper's ∆T).
  static Expr dt();

  [[nodiscard]] const std::vector<std::uint8_t>& code() const { return code_; }

  // Arithmetic
  friend Expr operator+(Expr a, const Expr& b) { return a.binary(b, Op::Add); }
  friend Expr operator-(Expr a, const Expr& b) { return a.binary(b, Op::Sub); }
  friend Expr operator*(Expr a, const Expr& b) { return a.binary(b, Op::Mul); }
  friend Expr operator/(Expr a, const Expr& b) { return a.binary(b, Op::Div); }
  friend Expr operator-(Expr a) { return a.unary(Op::Neg); }
  friend Expr operator!(Expr a) { return a.unary(Op::Not); }

  // Comparisons (result 0.0 / 1.0)
  friend Expr operator<(Expr a, const Expr& b) { return a.binary(b, Op::Lt); }
  friend Expr operator<=(Expr a, const Expr& b) { return a.binary(b, Op::Le); }
  friend Expr operator>(Expr a, const Expr& b) { return a.binary(b, Op::Gt); }
  friend Expr operator>=(Expr a, const Expr& b) { return a.binary(b, Op::Ge); }
  friend Expr operator==(Expr a, const Expr& b) { return a.binary(b, Op::Eq); }
  friend Expr operator!=(Expr a, const Expr& b) { return a.binary(b, Op::Ne); }

  // Logic (non-short-circuit; both sides evaluate — fine for pure loads)
  friend Expr operator&&(Expr a, const Expr& b) { return a.binary(b, Op::And); }
  friend Expr operator||(Expr a, const Expr& b) { return a.binary(b, Op::Or); }

  /// Bitwise ops for status masks, e.g. status(0) | 1.
  [[nodiscard]] Expr bit_and(const Expr& b) const;
  [[nodiscard]] Expr bit_or(const Expr& b) const;

  // Allow mixing with raw numbers: Expr::dt() <= 4.0
  friend Expr operator<=(Expr a, double b) { return a <= Expr::constant(b); }
  friend Expr operator<(Expr a, double b) { return a < Expr::constant(b); }
  friend Expr operator>=(Expr a, double b) { return a >= Expr::constant(b); }
  friend Expr operator>(Expr a, double b) { return a > Expr::constant(b); }
  friend Expr operator==(Expr a, double b) { return a == Expr::constant(b); }
  friend Expr operator!=(Expr a, double b) { return a != Expr::constant(b); }
  friend Expr operator+(Expr a, double b) { return a + Expr::constant(b); }
  friend Expr operator-(Expr a, double b) { return a - Expr::constant(b); }

 private:
  Expr() = default;
  Expr binary(const Expr& rhs, Op op) const;
  Expr unary(Op op) const;
  void append_imm8(Op op, std::uint8_t imm);

  std::vector<std::uint8_t> code_;
};

/// A sequence of stores/emits executed when a transition fires.
class Action {
 public:
  Action() = default;

  /// local[index] = value of `e`.
  Action& set_local(std::uint8_t index, const Expr& e);
  /// status[machine] = value of `e` (any machine's status is writable).
  Action& set_status(std::uint8_t machine, const Expr& e);
  /// Publish an event with code `code` and payload `e` for host software.
  Action& emit(std::uint8_t code, const Expr& e);

  [[nodiscard]] const std::vector<std::uint8_t>& code() const { return code_; }
  [[nodiscard]] bool empty() const { return code_.empty(); }

 private:
  std::vector<std::uint8_t> code_;
};

}  // namespace mpros::sbfr
