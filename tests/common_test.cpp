// Tests for the common substrate: clock, ids, ring buffer, queues, pool, rng.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "mpros/common/bounded_queue.hpp"
#include "mpros/common/clock.hpp"
#include "mpros/common/concurrent_queue.hpp"
#include "mpros/common/ids.hpp"
#include "mpros/common/ring_buffer.hpp"
#include "mpros/common/rng.hpp"
#include "mpros/common/thread_pool.hpp"

namespace mpros {
namespace {

TEST(SimTimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(SimTime::from_seconds(1.0).micros(), 1'000'000);
  EXPECT_DOUBLE_EQ(SimTime::from_millis(250.0).seconds(), 0.25);
  EXPECT_DOUBLE_EQ(SimTime::from_hours(2.0).seconds(), 7200.0);
  EXPECT_DOUBLE_EQ(SimTime::from_days(3.0).hours(), 72.0);
  EXPECT_DOUBLE_EQ(SimTime::from_months(2.0).days(), 60.0);
}

TEST(SimTimeTest, ArithmeticAndComparison) {
  const SimTime a = SimTime::from_seconds(10.0);
  const SimTime b = SimTime::from_seconds(4.0);
  EXPECT_EQ((a + b).seconds(), 14.0);
  EXPECT_EQ((a - b).seconds(), 6.0);
  EXPECT_LT(b, a);
  EXPECT_EQ(a, SimTime::from_seconds(10.0));
}

TEST(SimTimeTest, ToStringPicksSensibleUnits) {
  EXPECT_EQ(to_string(SimTime::from_seconds(2.5)), "2.50s");
  EXPECT_EQ(to_string(SimTime::from_months(4.5)), "4.50mo");
  EXPECT_EQ(to_string(SimTime::from_millis(3.0)), "3.00ms");
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now().micros(), 0);
  clock.advance(SimTime::from_seconds(5.0));
  EXPECT_EQ(clock.now().seconds(), 5.0);
  clock.advance_to(SimTime::from_seconds(9.0));
  EXPECT_EQ(clock.now().seconds(), 9.0);
}

TEST(StrongIdTest, DistinctTypesAndHashing) {
  const DcId a(7), b(7), c(9);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(DcId().valid());
  std::set<DcId> ids{a, b, c};
  EXPECT_EQ(ids.size(), 2u);
}

TEST(RingBufferTest, OverwritesOldest) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  rb.push(4);  // evicts 1
  EXPECT_EQ(rb.at_oldest(0), 2);
  EXPECT_EQ(rb.at_oldest(2), 4);
  EXPECT_EQ(rb.at_newest(0), 4);
}

TEST(RingBufferTest, LatestCopiesInOrder) {
  RingBuffer<int> rb(4);
  for (int i = 1; i <= 6; ++i) rb.push(i);
  std::vector<int> out;
  rb.latest(3, out);
  EXPECT_EQ(out, (std::vector<int>{4, 5, 6}));
}

TEST(RingBufferTest, BatchPushAndClear) {
  RingBuffer<double> rb(8);
  const double vs[] = {1.0, 2.0, 3.0};
  rb.push(std::span<const double>(vs));
  EXPECT_EQ(rb.size(), 3u);
  rb.clear();
  EXPECT_TRUE(rb.empty());
}

TEST(ConcurrentQueueTest, FifoOrder) {
  ConcurrentQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  int v = 0;
  EXPECT_EQ(q.try_pop(v), QueuePopStatus::Empty);
}

TEST(ConcurrentQueueTest, CloseWakesAndDrains) {
  ConcurrentQueue<int> q;
  q.push(42);
  q.close();
  EXPECT_FALSE(q.push(43));
  EXPECT_EQ(q.pop().value(), 42);  // drains before returning nullopt
  EXPECT_FALSE(q.pop().has_value());
}

TEST(ConcurrentQueueTest, TryPopDistinguishesEmptyFromDrained) {
  // Regression: try_pop used to return a bare optional, so a non-blocking
  // consumer could not tell "nothing right now" from "closed and drained"
  // and would spin forever on a dead queue.
  ConcurrentQueue<int> q;
  int v = 0;
  EXPECT_EQ(q.try_pop(v), QueuePopStatus::Empty);
  EXPECT_FALSE(q.drained());
  q.push(7);
  EXPECT_EQ(q.try_pop(v), QueuePopStatus::Ok);
  EXPECT_EQ(v, 7);
  q.push(8);
  q.close();
  EXPECT_FALSE(q.drained());  // closed but not yet empty
  EXPECT_EQ(q.try_pop(v), QueuePopStatus::Ok);
  EXPECT_EQ(v, 8);
  EXPECT_EQ(q.try_pop(v), QueuePopStatus::Drained);
  EXPECT_TRUE(q.drained());
}

TEST(RingBufferTest, SpanPushMatchesElementwisePushAcrossWraparound) {
  // The segmented span push must be observationally identical to pushing
  // element by element (the pre-optimization behaviour), wraparound included.
  RingBuffer<int> segmented(5);
  RingBuffer<int> reference(5);
  int next = 0;
  for (const std::size_t batch : {3u, 4u, 2u, 5u, 1u, 4u}) {
    std::vector<int> vs(batch);
    for (int& v : vs) v = next++;
    segmented.push(std::span<const int>(vs));
    for (const int v : vs) reference.push(v);
    ASSERT_EQ(segmented.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(segmented.at_oldest(i), reference.at_oldest(i));
      ASSERT_EQ(segmented.at_newest(i), reference.at_newest(i));
    }
  }
}

TEST(RingBufferTest, OversizedSpanViolatesTheContract) {
  // Batch-ingest audit: a span larger than the window means the producer
  // sized a batch the buffer can never hold. That used to silently keep
  // only the tail; it is now an explicit precondition.
  RingBuffer<int> rb(4);
  rb.push(1);
  const std::vector<int> fits{10, 11, 12, 13};  // == capacity: fine
  rb.push(std::span<const int>(fits));
  EXPECT_EQ(rb.at_oldest(0), 10);
  EXPECT_EQ(rb.at_newest(0), 13);
  const std::vector<int> oversized{10, 11, 12, 13, 14};
  EXPECT_DEATH(rb.push(std::span<const int>(oversized)), "precondition");
}

TEST(BoundedQueueTest, BlockPolicyWaitsForSpaceLosslessly) {
  BoundedQueue<int> q(2, OverflowPolicy::Block);
  EXPECT_TRUE(q.push(1).accepted);
  EXPECT_TRUE(q.push(2).accepted);
  std::atomic<bool> third_accepted{false};
  std::thread producer([&] {
    // Full at entry (the consumer pops only after this thread starts), so
    // this blocks until space frees; whichever way the race goes, Block
    // must deliver the item.
    EXPECT_TRUE(q.push(3).accepted);
    third_accepted.store(true);
  });
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(third_accepted.load());
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);  // nothing was lost
}

TEST(BoundedQueueTest, DropOldestEvictsFrontAndReports) {
  BoundedQueue<int> q(2, OverflowPolicy::DropOldest);
  EXPECT_FALSE(q.push(1).was_full);
  EXPECT_FALSE(q.push(2).was_full);
  const auto r = q.push(3);
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.was_full);
  EXPECT_TRUE(r.evicted);  // 1 was discarded: newest data wins
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BoundedQueueTest, TriStatePopAndCloseSemantics) {
  BoundedQueue<int> q(4, OverflowPolicy::Block);
  int v = 0;
  EXPECT_EQ(q.try_pop(v), QueuePopStatus::Empty);
  q.push(5);
  q.close();
  EXPECT_FALSE(q.push(6).accepted);  // closed rejects producers
  EXPECT_EQ(q.try_pop(v), QueuePopStatus::Ok);
  EXPECT_EQ(v, 5);
  EXPECT_EQ(q.try_pop(v), QueuePopStatus::Drained);
  EXPECT_TRUE(q.drained());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1, OverflowPolicy::Block);
  EXPECT_TRUE(q.push(1).accepted);
  std::thread producer([&] {
    const auto r = q.push(2);  // blocks on the full queue...
    EXPECT_FALSE(r.accepted);  // ...until close() rejects it
  });
  q.close();
  producer.join();
  EXPECT_EQ(q.pop().value(), 1);  // close still drains queued items
}

TEST(ConcurrentQueueTest, ManyProducersOneConsumer) {
  ConcurrentQueue<int> q;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<std::jthread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; ++i) q.push(i);
    });
  }
  producers.clear();  // join
  q.close();
  int count = 0;
  while (q.pop().has_value()) ++count;
  EXPECT_EQ(count, kPerProducer * kProducers);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForUnevenChunksHitEveryIndexOnce) {
  // 67 indices across 8 workers does not divide evenly (8*8=64, so three
  // chunks carry an extra index); every index must still run exactly once.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(67);
  pool.parallel_for(67, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRangeSmallerThanPool) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeReturns) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng base(7);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.uniform(0, 1) != b.uniform(0, 1)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, NormalHasRoughlyCorrectMoments) {
  Rng rng(4242);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

}  // namespace
}  // namespace mpros
