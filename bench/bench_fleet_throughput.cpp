// E7 — Fleet data rates (§1).
//
// Paper claim: "thousands of embedded processors will collect millions of
// data points per second"; "Results from hundreds of DCs per ship will be
// correlated at a system level" by the PDME. The harness sweeps DC count
// and reports simulated samples/second of acquisition plus PDME report
// throughput, demonstrating the data-load shape the paper motivates.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mpros/mpros/ship_system.hpp"

namespace {

using namespace mpros;

void BM_FleetHour(benchmark::State& state) {
  const auto plants = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ShipSystemConfig cfg;
    cfg.plant_count = plants;
    cfg.dc_template.vibration_period = SimTime::from_seconds(600);
    cfg.dc_template.process_period = SimTime::from_seconds(60);
    cfg.seed = 0xF1EE7 + state.iterations();
    ShipSystem ship(cfg);
    // One faulted plant keeps the report path exercised.
    ship.chiller(0).faults().schedule(
        {domain::FailureMode::MotorImbalance, SimTime(0), SimTime(0), 0.9,
         plant::GrowthProfile::Step});
    state.ResumeTiming();

    ship.run_until(SimTime::from_hours(1.0));

    state.PauseTiming();
    const auto stats = ship.fleet_stats();
    state.counters["dc_count"] = static_cast<double>(plants);
    state.counters["samples_per_sim_s"] =
        static_cast<double>(stats.samples_processed) / 3600.0;
    state.counters["reports_fused"] =
        static_cast<double>(stats.reports_fused);
    state.ResumeTiming();
  }
  state.SetLabel("1 simulated hour");
}
BENCHMARK(BM_FleetHour)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_PdmeReportIngest(benchmark::State& state) {
  // Raw PDME fusion throughput: how many §7 reports per second the central
  // engine can post + fuse (the "hundreds of DCs" correlation point).
  oosm::ObjectModel model;
  const auto ship = oosm::build_ship(model, "bench", 1, 1);
  pdme::PdmeConfig cfg;
  cfg.deduplicate = false;  // measure fusion, not the dedup cache
  pdme::PdmeExecutive pdme(model, cfg);

  const auto modes = domain::all_failure_modes();
  std::uint64_t i = 0;
  for (auto _ : state) {
    net::FailureReport r;
    r.dc = DcId(1 + i % 200);
    r.knowledge_source = KnowledgeSourceId(1 + i % 4);
    r.sensed_object = ship.plants[0].motor;
    r.machine_condition = domain::condition_id(modes[i % modes.size()]);
    r.severity = 0.5;
    r.belief = 0.4;
    r.timestamp = SimTime(static_cast<std::int64_t>(i));
    pdme.accept(r);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("reports fused (OOSM post + D-S + prognostic)");
}
BENCHMARK(BM_PdmeReportIngest);

void BM_WireSerialization(benchmark::State& state) {
  net::FailureReport r;
  r.dc = DcId(3);
  r.knowledge_source = KnowledgeSourceId(1);
  r.sensed_object = ObjectId(17);
  r.machine_condition = ConditionId(5);
  r.severity = 0.62;
  r.belief = 0.91;
  r.explanation = "1x running-speed amplitude elevated";
  r.recommendations = "Field balance the rotor.";
  r.prognostics = {{0.1, 86400.0}, {0.5, 604800.0}, {0.9, 2592000.0}};
  for (auto _ : state) {
    const auto bytes = net::serialize(r);
    benchmark::DoNotOptimize(net::deserialize_report(bytes));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("report round-trips");
}
BENCHMARK(BM_WireSerialization);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "\nE7 fleet data rates (paper §1)\n"
      "  claim  : 'millions of data points per second' fleet-wide;\n"
      "           'hundreds of DCs per ship' correlated at the PDME\n"
      "  shape  : samples_per_sim_s scales linearly with dc_count below;\n"
      "           BM_PdmeReportIngest bounds central correlation capacity\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
