// Plant simulator tests: fault injection, vibration signatures, process
// dynamics, the chiller composition, EMA traces, and the Fig 5 DAQ chain.

#include <gtest/gtest.h>

#include <cmath>

#include "mpros/common/units.hpp"
#include "mpros/dsp/spectrum.hpp"
#include "mpros/dsp/stats.hpp"
#include "mpros/plant/chiller.hpp"
#include "mpros/plant/daq.hpp"
#include "mpros/plant/ema.hpp"
#include "mpros/plant/faults.hpp"
#include "mpros/plant/process.hpp"
#include "mpros/plant/vibration.hpp"

namespace mpros::plant {
namespace {

using domain::FailureMode;

TEST(FaultInjectorTest, LinearRamp) {
  FaultInjector inj;
  inj.schedule({FailureMode::MotorImbalance, SimTime::from_days(10),
                SimTime::from_days(20), 1.0, GrowthProfile::Linear});
  EXPECT_DOUBLE_EQ(inj.severity_at(FailureMode::MotorImbalance,
                                   SimTime::from_days(5)), 0.0);
  EXPECT_DOUBLE_EQ(inj.severity_at(FailureMode::MotorImbalance,
                                   SimTime::from_days(20)), 0.5);
  EXPECT_DOUBLE_EQ(inj.severity_at(FailureMode::MotorImbalance,
                                   SimTime::from_days(40)), 1.0);
}

TEST(FaultInjectorTest, StepAndAcceleratingProfiles) {
  FaultInjector inj;
  inj.schedule({FailureMode::GearMeshWear, SimTime::from_days(1),
                SimTime::from_days(10), 0.8, GrowthProfile::Step});
  inj.schedule({FailureMode::OilDegradation, SimTime::from_days(0),
                SimTime::from_days(10), 1.0, GrowthProfile::Accelerating});
  EXPECT_DOUBLE_EQ(inj.severity_at(FailureMode::GearMeshWear,
                                   SimTime::from_days(1)), 0.8);
  // Accelerating: quadratic — halfway through the ramp only 25%.
  EXPECT_DOUBLE_EQ(inj.severity_at(FailureMode::OilDegradation,
                                   SimTime::from_days(5)), 0.25);
}

TEST(FaultInjectorTest, MultipleEventsTakeMax) {
  FaultInjector inj;
  inj.schedule({FailureMode::PumpCavitation, SimTime(0), SimTime(0), 0.3,
                GrowthProfile::Step});
  inj.schedule({FailureMode::PumpCavitation, SimTime(0), SimTime(0), 0.7,
                GrowthProfile::Step});
  EXPECT_DOUBLE_EQ(inj.severity_at(FailureMode::PumpCavitation, SimTime(0)),
                   0.7);
}

TEST(FaultInjectorTest, DominantModeIsGroundTruth) {
  FaultInjector inj;
  EXPECT_FALSE(inj.dominant_at(SimTime(0)).has_value());
  inj.schedule({FailureMode::RefrigerantLeak, SimTime(0), SimTime(0), 0.4,
                GrowthProfile::Step});
  inj.schedule({FailureMode::CondenserFouling, SimTime(0), SimTime(0), 0.9,
                GrowthProfile::Step});
  EXPECT_EQ(inj.dominant_at(SimTime(0)), FailureMode::CondenserFouling);
}

// --- Vibration synthesis ------------------------------------------------------

constexpr double kRate = 40960.0;
constexpr std::size_t kWindow = 8192;

std::vector<double> synth_window(FailureMode mode, double severity,
                                 MachinePoint point,
                                 double load = 0.85) {
  VibrationSynthesizer synth(domain::navy_chiller_signature(), 4242);
  Severities s{};
  s[static_cast<std::size_t>(mode)] = severity;
  std::vector<double> w(kWindow);
  synth.acceleration(point, s, load, 0.0, kRate, w);
  return w;
}

TEST(VibrationTest, HealthyBaselineHasExpectedTones) {
  VibrationSynthesizer synth(domain::navy_chiller_signature(), 1);
  std::vector<double> w(kWindow);
  synth.acceleration(MachinePoint::Motor, Severities{}, 0.85, 0.0, kRate, w);
  const auto spec = dsp::amplitude_spectrum(w, kRate);
  const double shaft = domain::navy_chiller_signature().shaft_hz;
  EXPECT_NEAR(dsp::order_amplitude(spec, shaft, 1.0), 0.05, 0.02);
  EXPECT_LT(dsp::order_amplitude(spec, shaft, 2.0), 0.04);
}

TEST(VibrationTest, ImbalanceRaisesOneTimes) {
  const auto w = synth_window(FailureMode::MotorImbalance, 0.9,
                              MachinePoint::Motor);
  const auto spec = dsp::amplitude_spectrum(w, kRate);
  const double shaft = domain::navy_chiller_signature().shaft_hz;
  EXPECT_GT(dsp::order_amplitude(spec, shaft, 1.0), 0.35);
}

TEST(VibrationTest, MisalignmentRaisesTwoTimes) {
  const auto w = synth_window(FailureMode::ShaftMisalignment, 0.9,
                              MachinePoint::Motor);
  const auto spec = dsp::amplitude_spectrum(w, kRate);
  const double shaft = domain::navy_chiller_signature().shaft_hz;
  EXPECT_GT(dsp::order_amplitude(spec, shaft, 2.0), 0.25);
  EXPECT_GT(dsp::order_amplitude(spec, shaft, 2.0),
            dsp::order_amplitude(spec, shaft, 1.0));
}

TEST(VibrationTest, SeverityScalesSignature) {
  const double shaft = domain::navy_chiller_signature().shaft_hz;
  const auto mild = synth_window(FailureMode::MotorImbalance, 0.3,
                                 MachinePoint::Motor);
  const auto severe = synth_window(FailureMode::MotorImbalance, 0.9,
                                   MachinePoint::Motor);
  EXPECT_GT(dsp::order_amplitude(dsp::amplitude_spectrum(severe, kRate),
                                 shaft, 1.0),
            dsp::order_amplitude(dsp::amplitude_spectrum(mild, kRate),
                                 shaft, 1.0) * 1.5);
}

TEST(VibrationTest, AttenuationAcrossMachinePoints) {
  const double shaft = domain::navy_chiller_signature().shaft_hz;
  const auto at_motor = synth_window(FailureMode::MotorImbalance, 0.9,
                                     MachinePoint::Motor);
  const auto at_comp = synth_window(FailureMode::MotorImbalance, 0.9,
                                    MachinePoint::Compressor);
  EXPECT_GT(dsp::order_amplitude(dsp::amplitude_spectrum(at_motor, kRate),
                                 shaft, 1.0),
            dsp::order_amplitude(dsp::amplitude_spectrum(at_comp, kRate),
                                 shaft, 1.0) * 2.0);
}

TEST(VibrationTest, BearingFaultIsImpulsive) {
  const auto healthy = synth_window(FailureMode::MotorBearingWear, 0.0,
                                    MachinePoint::Motor);
  const auto faulty = synth_window(FailureMode::MotorBearingWear, 0.9,
                                   MachinePoint::Motor);
  EXPECT_GT(dsp::moments(faulty).kurtosis, dsp::moments(healthy).kurtosis);
  EXPECT_GT(dsp::crest_factor(faulty), dsp::crest_factor(healthy));
}

TEST(VibrationTest, CavitationRaisesBroadbandNoise) {
  const auto healthy = synth_window(FailureMode::PumpCavitation, 0.0,
                                    MachinePoint::Compressor);
  const auto faulty = synth_window(FailureMode::PumpCavitation, 0.9,
                                   MachinePoint::Compressor);
  const auto hs = dsp::amplitude_spectrum(healthy, kRate);
  const auto fs = dsp::amplitude_spectrum(faulty, kRate);
  EXPECT_GT(fs.band_energy(6000.0, 12000.0),
            3.0 * hs.band_energy(6000.0, 12000.0));
}

TEST(VibrationTest, PhaseContinuousAcrossAcquisitions) {
  // Two acquisitions at consecutive t0 must join smoothly (tones are
  // functions of absolute time).
  VibrationSynthesizer synth(domain::navy_chiller_signature(), 5);
  Severities s{};
  std::vector<double> a(1024), b(1024), joint(2048);
  synth.acceleration(MachinePoint::Motor, s, 0.8, 0.0, kRate, joint);
  VibrationSynthesizer synth2(domain::navy_chiller_signature(), 5);
  synth2.acceleration(MachinePoint::Motor, s, 0.8, 0.0, kRate, a);
  synth2.acceleration(MachinePoint::Motor, s, 0.8, 1024.0 / kRate, kRate, b);
  // Tones agree (noise differs): compare spectra of the tone-dominated low
  // band instead of samples.
  const auto sj = dsp::amplitude_spectrum(joint, kRate);
  const double shaft = domain::navy_chiller_signature().shaft_hz;
  EXPECT_NEAR(dsp::order_amplitude(sj, shaft, 1.0), 0.05, 0.02);
}

TEST(VibrationTest, RotorBarSidebandsInCurrent) {
  // Sub-Hz resolution is required to separate the ~1.4 Hz pole-pass
  // sidebands from the 60 Hz carrier: 8 s at 4096 Hz gives 0.125 Hz bins.
  constexpr double kCurrentRate = 4096.0;
  constexpr std::size_t kCurrentWindow = 32768;
  VibrationSynthesizer synth(domain::navy_chiller_signature(), 6);
  Severities healthy{}, faulty{};
  faulty[static_cast<std::size_t>(FailureMode::RotorBarDefect)] = 0.9;
  std::vector<double> hw(kCurrentWindow), fw(kCurrentWindow);
  synth.motor_current(healthy, 0.85, 0.0, kCurrentRate, hw);
  synth.motor_current(faulty, 0.85, 0.0, kCurrentRate, fw);

  const auto sig = domain::navy_chiller_signature();
  const double pole_pass = 2.0 * sig.slip_hz(0.85) * sig.pole_pairs;
  const auto hs = dsp::amplitude_spectrum(hw, kCurrentRate);
  const auto fs = dsp::amplitude_spectrum(fw, kCurrentRate);
  const double h_sb = hs.band_peak(60.0 - pole_pass * 1.2,
                                   60.0 - pole_pass * 0.8);
  const double f_sb = fs.band_peak(60.0 - pole_pass * 1.2,
                                   60.0 - pole_pass * 0.8);
  EXPECT_GT(f_sb, 5.0 * h_sb);
}

// --- Process model -------------------------------------------------------------

TEST(ProcessModelTest, RelaxesTowardFaultTargets) {
  ProcessModel pm(domain::navy_chiller_nominals(), 1,
                  SimTime::from_seconds(60.0));
  Severities s{};
  s[static_cast<std::size_t>(FailureMode::RefrigerantLeak)] = 1.0;
  for (int i = 0; i < 60; ++i) {
    pm.advance(SimTime::from_seconds(30.0), 0.8, s);
  }
  const auto state = pm.state();
  const auto nom = domain::navy_chiller_nominals();
  EXPECT_LT(state.at("process.evap_pressure_kpa"),
            nom.evap_pressure_kpa - 70.0);
  EXPECT_GT(state.at("process.superheat_c"), nom.superheat_c + 8.0);
}

TEST(ProcessModelTest, FirstOrderLagIsGradual) {
  ProcessModel pm(domain::navy_chiller_nominals(), 2,
                  SimTime::from_seconds(300.0));
  Severities s{};
  s[static_cast<std::size_t>(FailureMode::CondenserFouling)] = 1.0;
  pm.advance(SimTime::from_seconds(30.0), 0.8, s);
  const double after_30s = pm.state().at("process.cond_pressure_kpa");
  const auto nom = domain::navy_chiller_nominals();
  // One tenth of a time constant: far from the +340 kPa target.
  EXPECT_LT(after_30s, nom.cond_pressure_kpa + 120.0);
  EXPECT_GT(after_30s, nom.cond_pressure_kpa);
}

TEST(ProcessModelTest, SnapshotHasAllKeysAndNoise) {
  ProcessModel pm(domain::navy_chiller_nominals(), 3);
  pm.advance(SimTime::from_seconds(10.0), 0.8, Severities{});
  const auto a = pm.snapshot();
  const auto b = pm.snapshot();
  EXPECT_EQ(a.size(), 11u);
  EXPECT_TRUE(a.contains("process.load"));
  // Noise differs between snapshots of the same state.
  EXPECT_NE(a.at("process.oil_temp_c"), b.at("process.oil_temp_c"));
}

TEST(ProcessModelTest, LoadShapesOperatingPoint) {
  ProcessModel pm(domain::navy_chiller_nominals(), 4,
                  SimTime::from_seconds(10.0));
  for (int i = 0; i < 50; ++i) {
    pm.advance(SimTime::from_seconds(10.0), 1.0, Severities{});
  }
  const double full_load_current = pm.state().at("process.motor_current_a");
  for (int i = 0; i < 200; ++i) {
    pm.advance(SimTime::from_seconds(10.0), 0.3, Severities{});
  }
  EXPECT_LT(pm.state().at("process.motor_current_a"), full_load_current);
}

// --- Chiller composition ---------------------------------------------------------

TEST(ChillerSimulatorTest, TruthTracksInjectedFaults) {
  ChillerSimulator chiller;
  chiller.faults().schedule({FailureMode::GearMeshWear,
                             SimTime::from_hours(1.0), SimTime(0), 0.8,
                             GrowthProfile::Step});
  chiller.advance(SimTime::from_hours(0.5));
  EXPECT_FALSE(chiller.faults().dominant_at(chiller.now()).has_value());
  chiller.advance(SimTime::from_hours(1.0));
  EXPECT_EQ(chiller.faults().dominant_at(chiller.now()),
            FailureMode::GearMeshWear);
  EXPECT_DOUBLE_EQ(
      chiller.truth()[static_cast<std::size_t>(FailureMode::GearMeshWear)],
      0.8);
}

TEST(ChillerSimulatorTest, AcquisitionReflectsFaultState) {
  ChillerSimulator chiller;
  chiller.faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                             SimTime(0), 0.9, GrowthProfile::Step});
  chiller.advance(SimTime::from_seconds(1.0));
  std::vector<double> w(kWindow);
  chiller.acquire_vibration(MachinePoint::Motor, kRate, w);
  const auto spec = dsp::amplitude_spectrum(w, kRate);
  EXPECT_GT(dsp::order_amplitude(spec, chiller.signature().shaft_hz, 1.0),
            0.3);
}

// --- EMA -----------------------------------------------------------------------

TEST(EmaSimulatorTest, HealthyTraceHasNoSpikes) {
  EmaSimulator ema;
  const auto trace = ema.generate(10000, 0.0);
  EXPECT_EQ(ema.injected_spikes(), 0u);
}

TEST(EmaSimulatorTest, SpikeRateScalesWithStiction) {
  EmaSimulator ema;
  const auto mild_trace = ema.generate(50000, 0.3);
  const std::size_t low = ema.injected_spikes();
  const auto severe_trace = ema.generate(50000, 1.0);
  const std::size_t high = ema.injected_spikes();
  ASSERT_EQ(mild_trace.size(), severe_trace.size());
  EXPECT_GT(high, low);
  EXPECT_GT(low, 0u);
}

TEST(EmaSimulatorTest, CommandedMovesChangeCpos) {
  EmaSimulator ema;
  const auto trace = ema.generate(20000, 0.0, /*move_rate=*/0.01);
  EXPECT_GT(trace.back().cpos, 0.0);
}

// --- DAQ chain (Fig 5, E8 substrate) ----------------------------------------------

SignalSource tone_source(double freq, double amp) {
  return [freq, amp](std::size_t channel, double t0, double rate,
                     std::span<double> out) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double t = t0 + static_cast<double>(i) / rate;
      out[i] = amp * std::sin(kTwoPi * freq * t) +
               0.001 * static_cast<double>(channel);
    }
  };
}

TEST(DaqTest, ThirtyTwoChannelsViaTwoMuxCards) {
  DaqChain daq(DaqConfig{}, tone_source(100.0, 1.0));
  EXPECT_EQ(daq.channel_count(), 32u);
}

TEST(DaqTest, BankAcquisitionTimesAccountForSettle) {
  DaqConfig cfg;
  DaqChain daq(cfg, tone_source(100.0, 1.0));
  const auto acq = daq.acquire_bank(0, 0, 4096, 40960.0, SimTime(0));
  EXPECT_EQ(acq.waveforms.size(), 4u);
  EXPECT_EQ(acq.channels, (std::vector<std::size_t>{0, 1, 2, 3}));
  const double expected_s = cfg.mux_settle.seconds() + 4096.0 / 40960.0;
  EXPECT_NEAR((acq.finished - acq.started).seconds(), expected_s, 1e-9);
}

TEST(DaqTest, SampleRateClampedToCardMaximum) {
  DaqConfig cfg;
  cfg.max_sample_rate_hz = 51200.0;
  DaqChain daq(cfg, tone_source(100.0, 1.0));
  const auto acq = daq.acquire_bank(0, 0, 5120, 1e6, SimTime(0));
  // Record length reflects the clamped rate: 5120 / 51200 = 0.1 s.
  EXPECT_NEAR((acq.finished - acq.started).seconds() -
                  cfg.mux_settle.seconds(),
              0.1, 1e-9);
}

TEST(DaqTest, FullScanCoversEveryChannelSequentially) {
  DaqChain daq(DaqConfig{}, tone_source(100.0, 1.0));
  const auto scan = daq.scan_all(1024, 40960.0, SimTime(0));
  EXPECT_EQ(scan.waveforms.size(), 32u);
  EXPECT_EQ(scan.total_samples, 32u * 1024u);
  for (const auto& w : scan.waveforms) EXPECT_EQ(w.size(), 1024u);
  // 8 banks in sequence.
  const double expected =
      8.0 * (DaqConfig{}.mux_settle.seconds() + 1024.0 / 40960.0);
  EXPECT_NEAR(scan.duration.seconds(), expected, 1e-9);
}

TEST(DaqTest, RmsAlarmFiresOnlyAboveThreshold) {
  // Channel tone RMS = 1/sqrt(2) ≈ 0.707.
  DaqChain daq(DaqConfig{}, tone_source(100.0, 1.0));
  daq.set_alarm_threshold(3, 0.5);
  daq.set_alarm_threshold(4, 0.9);  // above the actual RMS: stays quiet
  const auto alarms = daq.poll_alarms(SimTime(0), SimTime::from_seconds(1.0));
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].channel, 3u);
  EXPECT_GT(alarms[0].rms, 0.5);
}

TEST(DaqTest, AlarmLatchesUntilRearm) {
  DaqChain daq(DaqConfig{}, tone_source(100.0, 1.0));
  daq.set_alarm_threshold(0, 0.5);
  EXPECT_EQ(daq.poll_alarms(SimTime(0), SimTime::from_seconds(1.0)).size(),
            1u);
  EXPECT_TRUE(daq.poll_alarms(SimTime::from_seconds(1.0),
                              SimTime::from_seconds(1.0)).empty());
  daq.rearm_alarms();
  EXPECT_EQ(daq.poll_alarms(SimTime::from_seconds(2.0),
                            SimTime::from_seconds(1.0)).size(),
            1u);
}

TEST(DaqTest, AlarmDetectionLatencyIsSmall) {
  // Alarm RMS time constant 50 ms: a sudden full-scale tone must be flagged
  // within a few time constants.
  DaqChain daq(DaqConfig{}, tone_source(500.0, 2.0));
  daq.set_alarm_threshold(0, 1.0);
  const auto alarms = daq.poll_alarms(SimTime(0), SimTime::from_seconds(1.0));
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_LT(alarms[0].at.seconds(), 0.25);
}

// --- Sensor-fault injection --------------------------------------------------

TEST(SensorFaultInjectorTest, CorruptionConfinedToScheduledWindow) {
  SensorFaultInjector inj(42);
  inj.schedule({"vib.motor", SensorFaultType::StuckAt,
                SimTime::from_seconds(10), SimTime::from_seconds(20), 3.3});

  EXPECT_FALSE(inj.active("vib.motor", SimTime::from_seconds(5)));
  EXPECT_TRUE(inj.active("vib.motor", SimTime::from_seconds(15)));
  EXPECT_FALSE(inj.active("vib.gearbox", SimTime::from_seconds(15)));

  std::vector<double> before(64);
  for (std::size_t i = 0; i < before.size(); ++i) {
    before[i] = 0.01 * static_cast<double>(i);
  }
  std::vector<double> w = before;
  inj.corrupt_window("vib.motor", SimTime::from_seconds(5), w);
  EXPECT_EQ(w, before);  // outside the window: untouched
  inj.corrupt_window("vib.motor", SimTime::from_seconds(15), w);
  for (const double s : w) EXPECT_DOUBLE_EQ(s, 3.3);  // stuck-at level
}

TEST(SensorFaultInjectorTest, EveryFaultTypeCorruptsAsDocumented) {
  SensorFaultInjector inj(7);
  const SimTime t = SimTime::from_seconds(50);
  inj.schedule({"a", SensorFaultType::Dropout, SimTime(0),
                SimTime::from_seconds(100)});
  inj.schedule({"b", SensorFaultType::OutOfRange, SimTime(0),
                SimTime::from_seconds(100), 500.0});
  inj.schedule({"c", SensorFaultType::Spike, SimTime(0),
                SimTime::from_seconds(100), 200.0, 0.05});

  EXPECT_TRUE(std::isnan(inj.corrupt_value("a", t, 1.0)));
  EXPECT_DOUBLE_EQ(inj.corrupt_value("b", t, 40.0), 540.0);

  std::vector<double> w(4096, 0.0);
  inj.corrupt_window("c", t, w);
  std::size_t spikes = 0;
  for (const double s : w) {
    if (s != 0.0) {
      ++spikes;
      EXPECT_DOUBLE_EQ(std::fabs(s), 200.0);
    }
  }
  // ~5% of samples hit, binomial scatter allowed.
  EXPECT_NEAR(static_cast<double>(spikes) / static_cast<double>(w.size()),
              0.05, 0.02);
}

TEST(SensorFaultInjectorTest, CorruptionIsDeterministicPureFunction) {
  // Same (channel, time, seed) must corrupt identically regardless of call
  // order or history — acquisition order can differ across runs.
  const auto corrupt = [](bool warm_up) {
    SensorFaultInjector inj(99);
    inj.schedule({"c", SensorFaultType::Spike, SimTime(0),
                  SimTime::from_seconds(100), 150.0, 0.01});
    if (warm_up) {
      std::vector<double> other(256, 0.0);
      inj.corrupt_window("c", SimTime::from_seconds(10), other);
    }
    std::vector<double> w(1024, 1.0);
    inj.corrupt_window("c", SimTime::from_seconds(42), w);
    return w;
  };
  EXPECT_EQ(corrupt(false), corrupt(true));
}

TEST(SensorFaultInjectorTest, ChillerAppliesScheduledCorruption) {
  ChillerConfig cfg;
  cfg.seed = 0xFA;
  ChillerSimulator chiller(cfg);
  chiller.sensor_faults().schedule({"process.bearing_temp_c",
                                    SensorFaultType::Dropout, SimTime(0),
                                    SimTime::from_hours(1.0)});
  chiller.advance(SimTime::from_seconds(60));
  const ProcessSnapshot snap = chiller.process_snapshot();
  ASSERT_TRUE(snap.contains("process.bearing_temp_c"));
  EXPECT_TRUE(std::isnan(snap.at("process.bearing_temp_c")));
  EXPECT_TRUE(std::isfinite(snap.at("process.oil_temp_c")));
}

}  // namespace
}  // namespace mpros::plant
