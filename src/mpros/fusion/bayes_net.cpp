#include "mpros/fusion/bayes_net.hpp"

#include <cmath>
#include <numeric>

#include "mpros/common/assert.hpp"

namespace mpros::fusion {

BayesNet::NodeId BayesNet::add_node(std::string name,
                                    std::vector<std::string> states,
                                    std::vector<double> prior) {
  MPROS_EXPECTS(!states.empty());
  MPROS_EXPECTS(prior.size() == states.size());
  double sum = 0.0;
  for (double p : prior) {
    MPROS_EXPECTS(p >= 0.0);
    sum += p;
  }
  MPROS_EXPECTS(std::fabs(sum - 1.0) < 1e-9);
  nodes_.push_back(Node{std::move(name), std::move(states), {},
                        std::move(prior)});
  return nodes_.size() - 1;
}

BayesNet::NodeId BayesNet::add_node(std::string name,
                                    std::vector<std::string> states,
                                    std::vector<NodeId> parents,
                                    std::vector<double> cpt) {
  MPROS_EXPECTS(!states.empty());
  MPROS_EXPECTS(!parents.empty());
  std::size_t rows = 1;
  for (const NodeId p : parents) {
    MPROS_EXPECTS(p < nodes_.size());  // parents precede children
    rows *= nodes_[p].states.size();
  }
  MPROS_EXPECTS(cpt.size() == rows * states.size());
  for (std::size_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (std::size_t s = 0; s < states.size(); ++s) {
      MPROS_EXPECTS(cpt[r * states.size() + s] >= 0.0);
      sum += cpt[r * states.size() + s];
    }
    MPROS_EXPECTS(std::fabs(sum - 1.0) < 1e-9);
  }
  nodes_.push_back(
      Node{std::move(name), std::move(states), std::move(parents),
           std::move(cpt)});
  return nodes_.size() - 1;
}

std::size_t BayesNet::state_count(NodeId n) const {
  MPROS_EXPECTS(n < nodes_.size());
  return nodes_[n].states.size();
}

const std::string& BayesNet::node_name(NodeId n) const {
  MPROS_EXPECTS(n < nodes_.size());
  return nodes_[n].name;
}

double BayesNet::node_probability(
    NodeId n, const std::vector<std::size_t>& assignment) const {
  const Node& node = nodes_[n];
  const std::size_t state = assignment[n];
  if (node.parents.empty()) return node.cpt[state];

  std::size_t row = 0;
  for (const NodeId p : node.parents) {
    row = row * nodes_[p].states.size() + assignment[p];
  }
  return node.cpt[row * node.states.size() + state];
}

double BayesNet::enumerate(std::size_t index,
                           std::vector<std::size_t>& assignment,
                           const std::map<NodeId, std::size_t>& evidence) const {
  if (index == nodes_.size()) {
    double joint = 1.0;
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      joint *= node_probability(n, assignment);
      if (joint == 0.0) break;
    }
    return joint;
  }

  const auto ev = evidence.find(index);
  if (ev != evidence.end()) {
    assignment[index] = ev->second;
    return enumerate(index + 1, assignment, evidence);
  }
  double sum = 0.0;
  for (std::size_t s = 0; s < nodes_[index].states.size(); ++s) {
    assignment[index] = s;
    sum += enumerate(index + 1, assignment, evidence);
  }
  return sum;
}

std::vector<double> BayesNet::posterior(
    NodeId query, const std::map<NodeId, std::size_t>& evidence) const {
  MPROS_EXPECTS(query < nodes_.size());
  MPROS_EXPECTS(!evidence.contains(query));
  for (const auto& [n, s] : evidence) {
    MPROS_EXPECTS(n < nodes_.size());
    MPROS_EXPECTS(s < nodes_[n].states.size());
  }

  std::vector<double> unnormalized(nodes_[query].states.size(), 0.0);
  std::vector<std::size_t> assignment(nodes_.size(), 0);
  for (std::size_t s = 0; s < unnormalized.size(); ++s) {
    std::map<NodeId, std::size_t> ev = evidence;
    ev[query] = s;
    unnormalized[s] = enumerate(0, assignment, ev);
  }
  const double total =
      std::accumulate(unnormalized.begin(), unnormalized.end(), 0.0);
  MPROS_EXPECTS(total > 0.0);  // evidence must be possible
  for (double& p : unnormalized) p /= total;
  return unnormalized;
}

GroupBayesFusion::GroupBayesFusion(domain::LogicalGroup group,
                                   double prior_none, double source_accuracy)
    : group_(group), prior_none_(prior_none),
      source_accuracy_(source_accuracy) {
  MPROS_EXPECTS(prior_none > 0.0 && prior_none < 1.0);
  MPROS_EXPECTS(source_accuracy > 0.0 && source_accuracy < 1.0);
}

std::vector<double> GroupBayesFusion::prior() const {
  const auto modes = domain::modes_in_group(group_);
  std::vector<double> p(modes.size() + 1,
                        (1.0 - prior_none_) / static_cast<double>(modes.size()));
  p.back() = prior_none_;
  return p;
}

std::size_t GroupBayesFusion::index_of(domain::FailureMode mode) const {
  const auto modes = domain::modes_in_group(group_);
  for (std::size_t i = 0; i < modes.size(); ++i) {
    if (modes[i] == mode) return i;
  }
  MPROS_EXPECTS(false && "mode not in group");
  return 0;
}

void GroupBayesFusion::add_report(ObjectId machine, const Report& report) {
  MPROS_EXPECTS(domain::logical_group(report.mode) == group_);
  MPROS_EXPECTS(report.belief >= 0.0 && report.belief <= 1.0);
  reports_[machine.value()].push_back(report);
}

std::vector<double> GroupBayesFusion::posterior(ObjectId machine) const {
  const auto it = reports_.find(machine.value());
  const std::vector<double> fault_prior = prior();
  if (it == reports_.end()) return fault_prior;

  const auto modes = domain::modes_in_group(group_);
  const std::size_t fault_states = modes.size() + 1;

  // Build the naive-Bayes net: fault root + one observed leaf per report.
  BayesNet net;
  std::vector<std::string> fault_names;
  for (const auto m : modes) fault_names.emplace_back(domain::to_string(m));
  fault_names.emplace_back("none");
  const BayesNet::NodeId fault =
      net.add_node("fault", fault_names, fault_prior);

  std::map<BayesNet::NodeId, std::size_t> evidence;
  for (std::size_t r = 0; r < it->second.size(); ++r) {
    const Report& rep = it->second[r];
    // Leaf states: one per reportable mode plus "silent". The key causal
    // fact is that healthy machines mostly produce *no* report, so merely
    // observing one is evidence against "none" — the false-alarm rate per
    // specific mode under "none" is small.
    const std::size_t leaf_states_count = modes.size() + 1;
    const double detect = source_accuracy_ * rep.belief;  // P(correct call)
    const double misdiagnose = 0.05;  // spread over the other group modes
    const double false_alarm = 0.02;  // per mode, when no fault exists

    std::vector<double> cpt;
    cpt.reserve(fault_states * leaf_states_count);
    for (std::size_t f = 0; f < fault_states; ++f) {
      double silent;
      if (f < modes.size()) {
        const double others =
            modes.size() > 1
                ? misdiagnose
                : 0.0;  // no sibling modes to confuse with
        silent = 1.0 - detect - others;
        for (std::size_t s = 0; s < modes.size(); ++s) {
          if (s == f) {
            cpt.push_back(detect);
          } else {
            cpt.push_back(others / static_cast<double>(modes.size() - 1));
          }
        }
      } else {
        silent = 1.0 - false_alarm * static_cast<double>(modes.size());
        for (std::size_t s = 0; s < modes.size(); ++s) {
          cpt.push_back(false_alarm);
        }
      }
      cpt.push_back(silent);
    }

    std::vector<std::string> leaf_names;
    for (const auto m : modes) leaf_names.emplace_back(domain::to_string(m));
    leaf_names.emplace_back("silent");
    const BayesNet::NodeId leaf = net.add_node(
        "report" + std::to_string(r), std::move(leaf_names), {fault},
        std::move(cpt));
    evidence[leaf] = index_of(rep.mode);
  }

  return net.posterior(fault, evidence);
}

double GroupBayesFusion::mode_probability(ObjectId machine,
                                          domain::FailureMode mode) const {
  return posterior(machine)[index_of(mode)];
}

}  // namespace mpros::fusion
