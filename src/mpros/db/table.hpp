#pragma once
// Table: schema-checked rows with a unique integer primary key and optional
// secondary indexes.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mpros/db/value.hpp"

namespace mpros::db {

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::Text;
  bool nullable = true;
};

struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;  // column 0 is the INTEGER primary key

  [[nodiscard]] std::optional<std::size_t> column_index(
      const std::string& column) const;
};

/// One row: values positionally matching the schema's columns.
using Row = std::vector<Value>;

/// Row filter used by scans.
using Predicate = std::function<bool(const Row&)>;

class Table {
 public:
  explicit Table(TableSchema schema);

  [[nodiscard]] const TableSchema& schema() const { return schema_; }
  [[nodiscard]] std::size_t row_count() const { return pk_index_.size(); }

  /// Insert a row. The primary key (column 0) must be a non-null integer and
  /// unique. Returns the key. Type-checks every cell against the schema.
  std::int64_t insert(Row row);

  /// Auto-assign the next key: pass the row WITHOUT the key column.
  std::int64_t insert_auto(Row row_without_key);

  [[nodiscard]] const Row* find(std::int64_t key) const;

  /// Update one column of an existing row; returns false if key is missing.
  bool update(std::int64_t key, const std::string& column, Value v);

  /// Remove a row; returns false if key is missing.
  bool erase(std::int64_t key);

  /// Full scan in key order; rows matching `where` (or all rows if null).
  [[nodiscard]] std::vector<Row> select(const Predicate& where = nullptr) const;

  /// Scan returning only keys (cheaper for joins).
  [[nodiscard]] std::vector<std::int64_t> select_keys(
      const Predicate& where = nullptr) const;

  /// Create a secondary index on a column (idempotent).
  void create_index(const std::string& column);

  /// Indexed equality lookup; requires create_index(column) first.
  [[nodiscard]] std::vector<std::int64_t> lookup(const std::string& column,
                                                 const Value& v) const;

  /// Indexed range lookup [lo, hi]; requires create_index(column) first.
  [[nodiscard]] std::vector<std::int64_t> lookup_range(
      const std::string& column, const Value& lo, const Value& hi) const;

  /// Number of live secondary indexes.
  [[nodiscard]] std::size_t index_count() const { return indexes_.size(); }

  /// Names of indexed columns, in schema order (deterministic).
  [[nodiscard]] std::vector<std::string> indexed_columns() const;

  /// Rows in key order (snapshot encoding, consistency checks, dump tools).
  [[nodiscard]] const std::map<std::int64_t, Row>& rows() const {
    return rows_;
  }

  /// The key insert_auto would assign next.
  [[nodiscard]] std::int64_t next_auto_key() const { return next_key_; }

  /// Force the auto-key counter (transaction rollback and WAL recovery
  /// bookkeeping only — a lower counter re-issues keys).
  void restore_next_key(std::int64_t next_key) { next_key_ = next_key; }

  /// Non-aborting schema checks, used by fail-soft recovery decoders to
  /// pre-validate untrusted input before touching the aborting mutators.
  [[nodiscard]] bool cell_admissible(std::size_t column_index,
                                     const Value& v) const;
  [[nodiscard]] bool row_admissible(const Row& row) const;

  /// Index consistency audit: every index entry must point at a live row
  /// whose cell is equivalent under the index ordering, and every row must
  /// appear in every index exactly once. Returns human-readable violations
  /// (empty == consistent).
  [[nodiscard]] std::vector<std::string> index_violations() const;

 private:
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const { return a.less(b); }
  };
  using SecondaryIndex = std::multimap<Value, std::int64_t, ValueLess>;

  void check_row(const Row& row) const;
  void check_cell(std::size_t column_index, const Value& v) const;
  void index_row(std::int64_t key, const Row& row);
  void unindex_row(std::int64_t key, const Row& row);

  TableSchema schema_;
  std::map<std::int64_t, Row> rows_;  // key order for stable scans
  std::unordered_map<std::int64_t, std::map<std::int64_t, Row>::iterator>
      pk_index_;
  std::unordered_map<std::size_t, SecondaryIndex> indexes_;  // by column idx
  std::int64_t next_key_ = 1;
};

}  // namespace mpros::db
