#include "mpros/pdme/shard_executor.hpp"

#include <algorithm>
#include <iterator>
#include <string>

#include "mpros/common/assert.hpp"
#include "mpros/common/rng.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::pdme {

namespace {

struct ShardMetrics {
  telemetry::Histogram& queue_wait_us;

  static ShardMetrics& instance() {
    static auto& reg = telemetry::Registry::instance();
    static ShardMetrics m{reg.histogram("pdme.shard_queue_wait_us")};
    return m;
  }
};

}  // namespace

ShardExecutor::ShardExecutor(const PdmeConfig& cfg,
                             const std::atomic<bool>& retest_enabled)
    : deduplicate_(cfg.deduplicate), retest_enabled_(retest_enabled) {
  MPROS_EXPECTS(cfg.shard_count >= 1);
  auto& reg = telemetry::Registry::instance();
  shards_.reserve(cfg.shard_count);
  for (std::size_t i = 0; i < cfg.shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        cfg, reg.gauge("pdme.shard" + std::to_string(i) + ".depth")));
  }
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->worker = std::thread([this, s] { worker_loop(*s); });
  }
}

ShardExecutor::~ShardExecutor() {
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

std::size_t ShardExecutor::shard_of(ObjectId machine) const {
  return static_cast<std::size_t>(splitmix64(machine.value()) %
                                  shards_.size());
}

ShardExecutor::SpanResult ShardExecutor::submit_span(
    std::span<const net::ReportEnvelope> run, std::uint64_t base_order,
    bool needs_post) {
  SpanResult out;
  // Partition the span per shard, preserving arrival order within each
  // bucket — per-machine FIFO order is what makes N-shard fusion
  // byte-identical to 1-shard.
  std::vector<std::vector<ShardTask::Item>> buckets(shards_.size());
  for (std::size_t i = 0; i < run.size(); ++i) {
    buckets[shard_of(run[i].report.sensed_object)].push_back(
        ShardTask::Item{run[i].report, base_order + i});
  }
  for (std::size_t s = 0; s < buckets.size(); ++s) {
    if (buckets[s].empty()) continue;
    Shard& shard = *shards_[s];
    const std::size_t pushed_reports = buckets[s].size();
    {
      std::lock_guard lock(barrier_mu_);
      ++submitted_;
    }
    const auto pushed = shard.queue.push(ShardTask{
        std::move(buckets[s]), needs_post, std::chrono::steady_clock::now()});
    if (pushed.was_full) out.was_full = true;
    if (pushed.evicted) {
      // The DropOldest victim never reaches the worker: retire its task so
      // quiesce() converges, and charge every report it carried.
      out.overflow_reports +=
          pushed.evicted_item ? pushed.evicted_item->items.size() : 0;
      retire_one();
    } else if (pushed.was_full) {
      // Block policy: the push waited but nothing was lost.
      out.overflow_reports += pushed_reports;
    }
    if (!pushed.accepted) {
      // Shutdown-rejected: the task never reaches the worker either.
      out.overflow_reports += pushed_reports;
      retire_one();
    }
    shard.depth.set(static_cast<double>(shard.queue.size()));
  }
  return out;
}

void ShardExecutor::retire_one() {
  {
    std::lock_guard lock(barrier_mu_);
    ++retired_;
  }
  barrier_cv_.notify_all();
}

void ShardExecutor::worker_loop(Shard& shard) {
  while (auto task = shard.queue.pop()) {
    shard.depth.set(static_cast<double>(shard.queue.size()));
    ShardMetrics::instance().queue_wait_us.observe(
        static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                                std::chrono::steady_clock::now() -
                                task->enqueued)
                                .count()));
    {
      // One lock round-trip and one Dempster-Shafer pass over the whole
      // task: a batch fuses under a single critical section per shard.
      std::lock_guard lock(shard.mu);
      for (ShardTask::Item& item : task->items) {
        if (task->needs_post && deduplicate_ &&
            !shard.core.mark_seen(report_signature(item.report))) {
          shard.core.count_duplicate();
          continue;
        }
        shard.core.fuse(item.report, item.order,
                        retest_enabled_.load(std::memory_order_relaxed));
        if (task->needs_post) {
          // fuse() is done with the report; move it into the deferred post.
          shard.pending_posts.push_back(
              PendingPost{std::move(item.report), item.order});
        }
      }
    }
    retire_one();
  }
}

void ShardExecutor::quiesce() {
  std::unique_lock lock(barrier_mu_);
  barrier_cv_.wait(lock, [&] { return retired_ == submitted_; });
}

std::vector<PendingPost> ShardExecutor::take_pending_posts() {
  std::vector<PendingPost> out;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    out.insert(out.end(),
               std::make_move_iterator(shard->pending_posts.begin()),
               std::make_move_iterator(shard->pending_posts.end()));
    shard->pending_posts.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const PendingPost& a, const PendingPost& b) {
              return a.order < b.order;
            });
  return out;
}

std::vector<PendingRetest> ShardExecutor::take_pending_retests() {
  std::vector<PendingRetest> out;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    auto batch = shard->core.take_pending_retests();
    out.insert(out.end(), batch.begin(), batch.end());
  }
  std::sort(out.begin(), out.end(),
            [](const PendingRetest& a, const PendingRetest& b) {
              return a.order < b.order;
            });
  return out;
}

}  // namespace mpros::pdme
