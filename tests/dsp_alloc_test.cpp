// Steady-state allocation audit for the DSP layer (ISSUE 2 acceptance).
//
// Overrides the global allocation functions with a counting hook, warms the
// plan/window caches and the per-thread scratch arena, then asserts that a
// further pass through every cached DSP entry point performs zero heap
// allocations. Lives in its own binary so the hook cannot distort the other
// test suites.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "mpros/dsp/cepstrum.hpp"
#include "mpros/dsp/envelope.hpp"
#include "mpros/dsp/spectrum.hpp"
#include "mpros/dsp/stft.hpp"
#include "mpros/wavelet/dwt.hpp"
#include "mpros/wavelet/features.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mpros {
namespace {

std::vector<double> test_signal(std::size_t n, double sample_rate_hz) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / sample_rate_hz;
    x[i] = std::sin(2.0 * M_PI * 297.0 * t) +
           0.4 * std::sin(2.0 * M_PI * 1850.0 * t) +
           0.05 * std::sin(2.0 * M_PI * 4321.0 * t);
  }
  return x;
}

TEST(DspAllocationTest, SteadyStateSpectralPipelineIsAllocationFree) {
  constexpr double kRate = 16384.0;
  const std::vector<double> x = test_signal(8192, kRate);

  dsp::SpectrumConfig cfg;
  cfg.fft_size = 8192;

  dsp::Spectrum spec;
  dsp::Spectrum welch;
  std::vector<double> env;
  std::vector<double> ceps;
  dsp::Spectrogram gram;
  dsp::StftConfig stft_cfg;

  const auto run_all = [&] {
    dsp::amplitude_spectrum(x, kRate, cfg, spec);
    dsp::welch_psd(x, kRate, 1024, dsp::WindowKind::Hann, welch);
    dsp::envelope_bandpassed(x, kRate, 2000.0, 6000.0, env);
    dsp::real_cepstrum(x, 0, ceps);
    dsp::stft(x, kRate, stft_cfg, gram);
  };

  // Two warm-up passes: the first builds plans, windows and scratch lanes,
  // the second lets every output container reach its final capacity.
  run_all();
  run_all();

  const std::uint64_t before = g_allocations.load();
  run_all();
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "cached DSP pass allocated " << (after - before) << " time(s)";
}

TEST(DspAllocationTest, SteadyStateWaveletPathIsAllocationFree) {
  const std::vector<double> x = test_signal(4096, 16384.0);

  wavelet::Decomposition d;
  std::vector<double> feats;

  const auto run_all = [&] {
    wavelet::decompose(x, wavelet::Family::Db4, 5, d);
    wavelet::wavelet_feature_vector(x, wavelet::Family::Db4, 5, feats);
  };

  run_all();
  run_all();

  const std::uint64_t before = g_allocations.load();
  run_all();
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "cached wavelet pass allocated " << (after - before) << " time(s)";
}

}  // namespace
}  // namespace mpros
