#include "mpros/net/reliable.hpp"

#include <algorithm>

#include "mpros/common/assert.hpp"
#include "mpros/common/log.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::net {

namespace {

struct ReliableMetrics {
  telemetry::Counter& envelopes_sent;
  telemetry::Counter& retransmits;
  telemetry::Counter& retransmit_overflow;

  static ReliableMetrics& get() {
    static auto& reg = telemetry::Registry::instance();
    static ReliableMetrics m{
        reg.counter("net.envelopes_sent"),
        reg.counter("net.retransmits"),
        reg.counter("net.retransmit_overflow"),
    };
    return m;
  }
};

}  // namespace

ReliableSender::ReliableSender(DcId dc, ReliableConfig cfg)
    : dc_(dc), cfg_(cfg) {
  MPROS_EXPECTS(cfg.buffer_limit >= 1);
  MPROS_EXPECTS(cfg.backoff >= 1.0);
  MPROS_EXPECTS(cfg.initial_rto.micros() > 0);
}

std::vector<std::uint8_t> ReliableSender::envelope(
    const FailureReport& report, SimTime now) {
  std::lock_guard lock(mu_);
  ReportEnvelope env;
  env.dc = dc_;
  env.sequence = next_sequence_++;
  env.report = report;
  std::vector<std::uint8_t> payload = wrap(env);

  if (window_.size() >= cfg_.buffer_limit) {
    MPROS_LOG_WARN("net",
                   "dc-%llu retransmit buffer full; dropping seq=%llu unacked",
                   static_cast<unsigned long long>(dc_.value()),
                   static_cast<unsigned long long>(window_.front().sequence));
    window_.pop_front();
    ++stats_.overflow_dropped;
    ReliableMetrics::get().retransmit_overflow.inc();
  }
  window_.push_back(Entry{env.sequence, payload, now + cfg_.initial_rto,
                          cfg_.initial_rto});
  ++stats_.enveloped;
  ReliableMetrics::get().envelopes_sent.inc();
  return payload;
}

void ReliableSender::on_ack(const AckMessage& ack) {
  if (ack.dc != dc_) return;  // mis-routed datagram
  std::lock_guard lock(mu_);
  while (!window_.empty() && window_.front().sequence <= ack.cumulative) {
    window_.pop_front();
    ++stats_.acked;
  }
}

std::vector<std::vector<std::uint8_t>> ReliableSender::due_retransmits(
    SimTime now) {
  std::lock_guard lock(mu_);
  std::vector<std::vector<std::uint8_t>> due;
  for (Entry& e : window_) {
    if (now < e.next_retry) continue;
    due.push_back(e.payload);
    e.rto = std::min(cfg_.max_rto,
                     SimTime(static_cast<std::int64_t>(
                         static_cast<double>(e.rto.micros()) * cfg_.backoff)));
    e.next_retry = now + e.rto;
    ++stats_.retransmits;
  }
  if (!due.empty()) {
    ReliableMetrics::get().retransmits.inc(due.size());
  }
  return due;
}

std::uint64_t ReliableSender::last_sequence() const {
  std::lock_guard lock(mu_);
  return next_sequence_ - 1;
}

std::size_t ReliableSender::unacked() const {
  std::lock_guard lock(mu_);
  return window_.size();
}

ReliableSender::Stats ReliableSender::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

ReliableReceiver::Outcome ReliableReceiver::on_envelope(
    DcId dc, std::uint64_t sequence) {
  MPROS_EXPECTS(sequence >= 1);
  Stream& s = streams_[dc.value()];
  Outcome out;

  if (sequence <= s.contiguous || s.pending.contains(sequence)) {
    out.duplicate = true;
    ++stats_.duplicates;
  } else {
    if (sequence > s.max_known) {
      // Everything between the old horizon and this arrival is missing.
      out.new_gaps = sequence - std::max(s.max_known, s.contiguous) - 1;
      s.max_known = sequence;
    } else {
      // A known-missing sequence arrived: one gap healed.
      ++stats_.gaps_healed;
    }
    stats_.gaps_detected += out.new_gaps;
    ++stats_.accepted;
    s.pending.insert(sequence);
    while (!s.pending.empty() && *s.pending.begin() == s.contiguous + 1) {
      ++s.contiguous;
      s.pending.erase(s.pending.begin());
    }
  }

  out.ack.dc = dc;
  out.ack.cumulative = s.contiguous;
  return out;
}

bool ReliableReceiver::is_duplicate(DcId dc, std::uint64_t sequence) const {
  MPROS_EXPECTS(sequence >= 1);
  const auto it = streams_.find(dc.value());
  if (it == streams_.end()) return false;
  const Stream& s = it->second;
  return sequence <= s.contiguous || s.pending.contains(sequence);
}

AckMessage ReliableReceiver::make_ack(DcId dc) const {
  return AckMessage{dc, cumulative(dc)};
}

std::uint64_t ReliableReceiver::on_advertised(DcId dc,
                                              std::uint64_t last_sequence) {
  Stream& s = streams_[dc.value()];
  if (last_sequence <= s.max_known) return 0;
  const std::uint64_t newly_missing =
      last_sequence - std::max(s.max_known, s.contiguous);
  s.max_known = last_sequence;
  stats_.gaps_detected += newly_missing;
  return newly_missing;
}

std::uint64_t ReliableReceiver::cumulative(DcId dc) const {
  const auto it = streams_.find(dc.value());
  return it == streams_.end() ? 0 : it->second.contiguous;
}

std::uint64_t ReliableReceiver::open_gaps(DcId dc) const {
  const auto it = streams_.find(dc.value());
  if (it == streams_.end()) return 0;
  const Stream& s = it->second;
  // Missing = everything the DC is known to have sent, minus everything
  // received (the contiguous prefix plus the out-of-order pending set).
  return s.max_known - s.contiguous - s.pending.size();
}

}  // namespace mpros::net
