#pragma once
// The shore-side fleet tier: hierarchical fusion across hundreds of ships.
//
// The paper's architecture ends at one PDME per hull; its fleet-comparative
// analyzer (§5.7) only pays off when sister machines are compared *across*
// hulls — the fleet-level CBM layer the prognostics literature frames above
// per-asset health (Taheri & Kolmanovsky, arXiv:1912.02708). The
// FleetServer ingests compact FleetSummary digests from N ships over the
// reliable ship-to-shore link, supervises per-ship liveness with the PR 3
// watchdog idiom (Alive -> Stale -> Lost on missed summary intervals), runs
// the comparative baseline across sister machine classes fleet-wide, and
// serves a prioritized cross-fleet maintenance view.
//
// Read path — the millions-of-users story: every query reads an immutable
// FleetSnapshot published by copy-on-write at the server's merge barrier
// (publish()). Ingest mutates private state under an internal mutex that
// readers never touch; publish() builds a fresh snapshot and swaps one
// atomic pointer. Thousands of concurrent browser/ICAS-style readers
// therefore never contend with ingest — E19 measures exactly that.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mpros/common/clock.hpp"
#include "mpros/common/ids.hpp"
#include "mpros/net/fleet_summary.hpp"
#include "mpros/net/network.hpp"
#include "mpros/net/reliable.hpp"

namespace mpros::fleet {

/// Watchdog verdict on one hull's summary stream (PR 3 idiom, one tier up).
enum class ShipLiveness : std::uint8_t { Alive = 0, Stale, Lost };

[[nodiscard]] const char* to_string(ShipLiveness liveness);

struct FleetServerConfig {
  /// The summary cadence ships are expected to hold. A hull silent for
  /// `stale_after_missed` intervals is Stale, for `lost_after_missed`
  /// intervals Lost; any summary or heartbeat restores Alive.
  SimTime summary_interval = SimTime::from_seconds(600.0);
  std::size_t stale_after_missed = 2;
  std::size_t lost_after_missed = 4;

  /// Fleet-comparative baseline: minimum sister machines (across hulls,
  /// same equipment class) before a comparison is made.
  std::size_t min_fleet = 3;
  /// Robust z-score (deviation / median absolute deviation) below the
  /// class median before a machine is flagged as a fleet outlier.
  double z_threshold = 3.0;
  /// Floor on the absolute health gap, so a uniformly healthy class with a
  /// microscopic MAD does not false-alarm.
  double min_health_delta = 0.08;
};

/// One hull's standing in the published view.
struct ShipStatus {
  ShipId ship;
  std::string name;
  ShipLiveness liveness = ShipLiveness::Alive;
  SimTime last_summary_time;   ///< ship-side timestamp of the applied summary
  std::uint64_t last_sequence = 0;  ///< newest summary sequence applied
  bool has_summary = false;

  // Digest fields copied from the latest summary.
  std::uint32_t dcs_alive = 0;
  std::uint32_t dcs_stale = 0;
  std::uint32_t dcs_lost = 0;
  std::uint32_t quarantine_active = 0;
  std::uint64_t quarantine_total = 0;

  double mean_health = 1.0;    ///< mean machine health aboard
  /// Hull divergence from the fleet baseline (robust z of mean_health
  /// across hulls; negative = worse than fleet).
  double fleet_z = 0.0;
  bool outlier_hull = false;
};

/// One line of the prioritized cross-fleet maintenance view.
struct FleetMaintenanceItem {
  ShipId ship;
  std::string ship_name;
  ObjectId machine;            ///< ship-local id; (ship, machine) is unique
  std::string machine_name;
  std::string klass;
  double health = 1.0;
  bool has_diagnosis = false;
  domain::FailureMode mode{};
  double belief = 0.0;
  double severity = 0.0;
  double priority = 0.0;       ///< primary sort key, descending
  std::uint32_t report_count = 0;
  bool has_median_ttf = false;
  SimTime median_ttf;
  /// Divergence of this machine from its fleet-wide class baseline.
  double fleet_z = 0.0;
  bool fleet_outlier = false;
};

/// A sister-machine class outlier: one machine markedly sicker than the
/// fleet-wide population of its class — a diagnosis no single hull can make.
struct FleetOutlier {
  std::string klass;
  ShipId ship;
  std::string ship_name;
  ObjectId machine;
  std::string machine_name;
  double health = 1.0;
  double fleet_median = 1.0;
  double robust_z = 0.0;
};

/// Immutable published view. Readers hold a shared_ptr to it; the server
/// never mutates a snapshot after publication.
struct FleetSnapshot {
  std::uint64_t epoch = 0;     ///< increments per publish()
  SimTime as_of;               ///< shore time of the publishing barrier

  std::size_t ships_expected = 0;
  std::size_t ships_alive = 0;
  std::size_t ships_stale = 0;
  std::size_t ships_lost = 0;
  std::uint32_t quarantine_active = 0;  ///< fleet-wide digest totals
  std::uint64_t quarantine_total = 0;

  std::vector<ShipStatus> ships;              ///< ascending ship id
  std::vector<FleetMaintenanceItem> items;    ///< priority order, worst first
  std::vector<FleetOutlier> outliers;         ///< class-baseline outliers
};

class FleetServer {
 public:
  explicit FleetServer(FleetServerConfig cfg = {});

  /// Declare a hull the watchdog must supervise from `since` on; without
  /// this, a ship partitioned before its first summary would never be
  /// missed. The fleet assembler registers every hull at construction.
  void expect_ship(ShipId ship, std::string name, SimTime since);

  /// Ingest one summary envelope delivered at shore time `at`. Returns the
  /// cumulative ack to send back up the hull's stream. Duplicates re-ack
  /// without touching fleet state; older-than-applied sequences heal stream
  /// gaps but do not regress the hull's latest summary, so the merged view
  /// is a function of the summary *set*, not of arrival order.
  net::AckMessage accept(const net::FleetSummaryEnvelope& env, SimTime at);

  /// Ship liveness beacon: refreshes the watchdog and checks the
  /// advertised tail sequence for loss the envelope stream cannot reveal.
  void accept(const net::HeartbeatMessage& hb, SimTime at);

  /// Wire adapter: register as the shore endpoint (acks flow back to
  /// "hull-<ship>"). Malformed payloads are counted, never fatal.
  void attach_to_network(net::SimNetwork& network,
                         const std::string& endpoint_name = "fleet");

  /// The merge barrier: run the liveness watchdog at `now`, recompute the
  /// fleet-comparative baselines, and publish a fresh snapshot epoch. The
  /// only writer of the published pointer.
  void publish(SimTime now);

  /// Wait-free against ingest: one atomic shared_ptr load, no locks shared
  /// with accept()/publish(). Never null (an empty epoch-0 snapshot exists
  /// from construction).
  [[nodiscard]] std::shared_ptr<const FleetSnapshot> snapshot() const {
    return published_.load(std::memory_order_acquire);
  }

  /// Epoch of the most recently published snapshot. Hot readers gate on
  /// this plain atomic and call snapshot() only when it advances: the
  /// shared_ptr load touches the control block's shared state (libstdc++
  /// guards atomic<shared_ptr> with an embedded lock), so a dashboard
  /// polling at high rate should pin one snapshot and refresh by epoch.
  /// Published after the snapshot store: once a reader observes epoch E
  /// here, snapshot() returns a view at least as new as E.
  [[nodiscard]] std::uint64_t published_epoch() const noexcept {
    return published_epoch_.load(std::memory_order_acquire);
  }

  /// Epoch-gated refresh for hot read loops: reload only when the
  /// published epoch moved past `snap`'s, otherwise leave `snap` pinned.
  /// Returns true when `snap` was refreshed.
  bool refresh(std::shared_ptr<const FleetSnapshot>& snap) const {
    if (snap != nullptr && published_epoch() == snap->epoch) return false;
    snap = snapshot();
    return true;
  }

  [[nodiscard]] ShipLiveness ship_liveness(ShipId ship) const;

  /// Text rendering of a snapshot: the shore operator's maintenance page.
  /// Deliberately free of arrival-order-sensitive counters (duplicates,
  /// epoch), so the rendered view is byte-identical however the same
  /// summary set arrived — the disorder property test's contract.
  [[nodiscard]] static std::string render(const FleetSnapshot& snap,
                                          std::size_t max_items = 20);
  [[nodiscard]] std::string render_fleet_view(std::size_t max_items = 20) const;

  /// Per-hull reliable-stream state (gap bookkeeping, cumulative acks).
  [[nodiscard]] net::ReliableReceiver::Stats receiver_stats() const;
  [[nodiscard]] std::uint64_t cumulative(ShipId ship) const;

  /// Shore-side control plane: fire one runtime-reconfiguration command down
  /// `ship`'s uplink endpoint (learned from its traffic; "hull-<id>" until
  /// the first arrival). Fire-and-forget on the shore hop — the hull
  /// re-issues it on its shipboard PDME->DC reliable stream, which owns the
  /// acks, retransmits and revision stamping. Returns false with no network
  /// attached.
  bool send_command(ShipId ship, const net::CommandMessage& cmd, SimTime at);

  struct Stats {
    std::uint64_t summaries_applied = 0;   ///< advanced a hull's latest view
    std::uint64_t summaries_stale = 0;     ///< accepted but older than applied
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t malformed_dropped = 0;
    std::uint64_t heartbeats = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t gaps_detected = 0;
    std::uint64_t liveness_transitions = 0;
    std::uint64_t publishes = 0;
    std::uint64_t commands_sent = 0;  ///< control-plane downlinks fired

    friend bool operator==(const Stats&, const Stats&) = default;
  };
  /// Coherent copy of the server's counters, taken under the server lock.
  /// All fields are monotonic (never regress); instantaneous state lives on
  /// snapshot()/liveness accessors. Named stats_snapshot() rather than the
  /// fleet-wide snapshot() convention because snapshot() here is the
  /// published FleetSnapshot epoch accessor.
  [[nodiscard]] Stats stats_snapshot() const;
  /// Deprecated: thin shim for stats_snapshot() — same value, older name.
  [[nodiscard]] Stats stats() const { return stats_snapshot(); }

 private:
  struct ShipState {
    std::string name;
    std::string endpoint;       ///< shore-network address, learned from traffic
    SimTime since;              ///< supervised from here on
    SimTime last_heard;         ///< newest arrival (summary or heartbeat)
    ShipLiveness liveness = ShipLiveness::Alive;
    std::uint64_t applied_sequence = 0;
    std::uint64_t heartbeats = 0;
    bool has_summary = false;
    net::FleetSummary latest;
  };

  void note_ship_alive_locked(ShipState& state, SimTime at);
  void update_liveness_locked(SimTime now);
  [[nodiscard]] std::shared_ptr<const FleetSnapshot> build_snapshot_locked(
      SimTime now) const;

  const FleetServerConfig cfg_;
  mutable std::mutex mu_;      ///< ingest + publish; never taken by readers
  net::SimNetwork* network_ = nullptr;
  std::string endpoint_name_;
  net::ReliableReceiver receiver_;
  std::map<std::uint64_t, ShipState> ships_;  // by ShipId value
  std::uint64_t epoch_ = 0;
  Stats stats_;
  std::atomic<std::shared_ptr<const FleetSnapshot>> published_;
  std::atomic<std::uint64_t> published_epoch_{0};
};

}  // namespace mpros::fleet
