#pragma once
// Unbounded MPMC queue with shutdown semantics.
//
// This is the message-passing backbone between simulated DCs and the PDME:
// producers (DC threads) push; the PDME consumer pops. Closing the queue
// wakes all waiters — consumers drain remaining items, then pop() returns
// nullopt. No shared mutable state crosses the queue other than the moved
// values themselves (MPI-style discipline from the HPC guides).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mpros {

/// Result of a non-blocking pop. `Empty` means "nothing right now, more may
/// come"; `Drained` means "closed and empty, nothing will ever come" — a
/// non-blocking consumer that treated the two alike would spin forever on a
/// closed queue.
enum class QueuePopStatus : std::uint8_t { Ok = 0, Empty, Drained };

template <typename T>
class ConcurrentQueue {
 public:
  /// Push one item. Returns false if the queue is already closed.
  bool push(T v) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(v));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  /// Non-blocking pop. `Empty` and `Drained` are distinct so a consumer
  /// polling between other duties knows when to stop polling for good.
  QueuePopStatus try_pop(T& out) {
    std::lock_guard lock(mu_);
    if (items_.empty()) {
      return closed_ ? QueuePopStatus::Drained : QueuePopStatus::Empty;
    }
    out = std::move(items_.front());
    items_.pop_front();
    return QueuePopStatus::Ok;
  }

  /// Close the queue: no further pushes succeed; waiters drain then wake.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  /// Closed and empty: no item will ever be produced again.
  [[nodiscard]] bool drained() const {
    std::lock_guard lock(mu_);
    return closed_ && items_.empty();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mpros
