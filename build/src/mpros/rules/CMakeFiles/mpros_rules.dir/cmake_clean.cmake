file(REMOVE_RECURSE
  "CMakeFiles/mpros_rules.dir/believability.cpp.o"
  "CMakeFiles/mpros_rules.dir/believability.cpp.o.d"
  "CMakeFiles/mpros_rules.dir/dli_rules.cpp.o"
  "CMakeFiles/mpros_rules.dir/dli_rules.cpp.o.d"
  "CMakeFiles/mpros_rules.dir/engine.cpp.o"
  "CMakeFiles/mpros_rules.dir/engine.cpp.o.d"
  "CMakeFiles/mpros_rules.dir/features.cpp.o"
  "CMakeFiles/mpros_rules.dir/features.cpp.o.d"
  "CMakeFiles/mpros_rules.dir/severity.cpp.o"
  "CMakeFiles/mpros_rules.dir/severity.cpp.o.d"
  "libmpros_rules.a"
  "libmpros_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
