#pragma once
// Small unit helpers used across the plant and DSP code.

#include <numbers>

namespace mpros {

constexpr double kPi = std::numbers::pi;
constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Shaft speed conversions. Vibration analysis is organized around "orders"
/// (multiples of running speed), so rpm <-> Hz appears everywhere.
constexpr double rpm_to_hz(double rpm) { return rpm / 60.0; }
constexpr double hz_to_rpm(double hz) { return hz * 60.0; }

constexpr double celsius_to_kelvin(double c) { return c + 273.15; }
constexpr double kelvin_to_celsius(double k) { return k - 273.15; }

/// Pressure in kPa throughout; PSI appears in Navy-facing displays.
constexpr double kpa_to_psi(double kpa) { return kpa * 0.145037738; }

/// Acceleration expressed in g for display, m/s^2 internally.
constexpr double g_to_ms2(double g) { return g * 9.80665; }
constexpr double ms2_to_g(double ms2) { return ms2 / 9.80665; }

}  // namespace mpros
