#include "mpros/fusion/trend.hpp"

#include <algorithm>
#include <cmath>

#include "mpros/common/assert.hpp"

namespace mpros::fusion {

TrendProjector::TrendProjector(TrendConfig cfg) : cfg_(cfg) {
  MPROS_EXPECTS(cfg.min_points >= 2);
  MPROS_EXPECTS(cfg.max_points >= cfg.min_points);
}

void TrendProjector::linearize() {
  if (head_ == 0) return;
  std::rotate(history_.begin(),
              history_.begin() + static_cast<std::ptrdiff_t>(head_),
              history_.end());
  head_ = 0;
}

void TrendProjector::observe(SimTime t, double severity) {
  MPROS_EXPECTS(severity >= 0.0 && severity <= 1.0);
  if (history_.size() == cfg_.max_points && cfg_.max_points > 0) {
    const std::size_t newest = (head_ + history_.size() - 1) % history_.size();
    if (!(t < history_[newest].t)) {
      // Full window, in-order arrival (the ingest steady state): overwrite
      // the oldest slot in place. Equivalent to the general path below —
      // insert at the end, then drop the front — without the O(window)
      // shift per report.
      history_[head_] = Sample{t, severity};
      head_ = (head_ + 1) % history_.size();
      return;
    }
    linearize();
  }
  const auto pos = std::upper_bound(
      history_.begin(), history_.end(), t,
      [](SimTime value, const Sample& s) { return value < s.t; });
  history_.insert(pos, Sample{t, severity});
  if (history_.size() > cfg_.max_points) {
    history_.erase(history_.begin());
  }
}

std::optional<TrendFit> TrendProjector::fit() const {
  if (history_.size() < cfg_.min_points) return std::nullopt;

  // Index circularly from head_ so the sums accumulate in time order —
  // bit-identical to the flat-vector iteration this replaced.
  const std::size_t count = history_.size();
  const double n = static_cast<double>(count);
  double sum_t = 0.0, sum_s = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const Sample& p = history_[(head_ + i) % count];
    sum_t += p.t.days();
    sum_s += p.severity;
  }
  const double mean_t = sum_t / n;
  const double mean_s = sum_s / n;

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const Sample& p = history_[(head_ + i) % count];
    const double dt = p.t.days() - mean_t;
    const double ds = p.severity - mean_s;
    sxx += dt * dt;
    sxy += dt * ds;
    syy += ds * ds;
  }
  if (sxx <= 0.0) return std::nullopt;  // all samples at one instant

  TrendFit f;
  f.slope_per_day = sxy / sxx;
  f.intercept = mean_s - f.slope_per_day * mean_t;
  f.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return f;
}

std::optional<SimTime> TrendProjector::time_to_failure(SimTime now) const {
  const auto f = fit();
  if (!f || f->slope_per_day < cfg_.min_slope_per_day ||
      f->r_squared < cfg_.min_r_squared) {
    return std::nullopt;
  }

  const double days_to_failure =
      (cfg_.failure_severity - (f->intercept + f->slope_per_day * now.days())) /
      f->slope_per_day;
  if (days_to_failure <= 0.0) return SimTime(0);
  return SimTime::from_days(days_to_failure);
}

PrognosticVector TrendProjector::project(SimTime now) const {
  const auto ttf = time_to_failure(now);
  if (!ttf) return PrognosticVector{};

  // Probability shape around the projected crossing: failure is as likely
  // as not at the crossing, and nearly certain 50% further out. The head
  // of the curve stays shallow so early projections are not alarmist.
  const double ttf_days = std::max(0.01, ttf->days());
  std::vector<PrognosticPoint> points;
  points.push_back({SimTime::from_days(0.5 * ttf_days), 0.10});
  points.push_back({SimTime::from_days(ttf_days), 0.50});
  points.push_back({SimTime::from_days(1.5 * ttf_days), 0.95});
  return PrognosticVector(std::move(points));
}

}  // namespace mpros::fusion
