#include "mpros/telemetry/recorder.hpp"

#include <cstdio>

namespace mpros::telemetry {

namespace {

constexpr char kMagic[3] = {'M', 'F', 'R'};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked cursor: every read reports success, nothing aborts.
struct Cursor {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  [[nodiscard]] std::size_t remaining() const { return data.size() - pos; }

  bool u8(std::uint8_t& v) {
    if (remaining() < 1) return false;
    v = data[pos++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos += 8;
    return true;
  }
  bool str(std::string& s) {
    std::uint32_t len = 0;
    if (!u32(len) || remaining() < len) return false;
    s.assign(reinterpret_cast<const char*>(data.data() + pos), len);
    pos += len;
    return true;
  }
  bool bytes(std::vector<std::uint8_t>& out) {
    std::uint32_t len = 0;
    if (!u32(len) || remaining() < len) return false;
    out.assign(data.begin() + static_cast<std::ptrdiff_t>(pos),
               data.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
    return true;
  }
};

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::set_header(RecorderHeader header) {
  std::lock_guard lock(mu_);
  header_ = header;
  header_.version = kRecorderVersion;
}

RecorderHeader FlightRecorder::header() const {
  std::lock_guard lock(mu_);
  return header_;
}

void FlightRecorder::push_locked(RecorderFrame frame) {
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++evicted_;
  }
  ring_.push_back(std::move(frame));
  ++recorded_;
}

void FlightRecorder::record_message(std::int64_t time_us, std::string from,
                                    std::string to,
                                    std::vector<std::uint8_t> payload) {
  std::lock_guard lock(mu_);
  RecorderFrame frame;
  frame.kind = FrameKind::NetMessage;
  frame.time_us = time_us;
  frame.from = std::move(from);
  frame.to = std::move(to);
  frame.payload = std::move(payload);
  push_locked(std::move(frame));
}

void FlightRecorder::record_event(std::int64_t time_us, std::string component,
                                  const std::string& text) {
  std::lock_guard lock(mu_);
  RecorderFrame frame;
  frame.kind = FrameKind::Event;
  frame.time_us = time_us;
  frame.from = std::move(component);
  frame.payload.assign(text.begin(), text.end());
  push_locked(std::move(frame));
}

std::vector<RecorderFrame> FlightRecorder::frames() const {
  std::lock_guard lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard lock(mu_);
  return recorded_;
}

std::uint64_t FlightRecorder::evicted() const {
  std::lock_guard lock(mu_);
  return evicted_;
}

void FlightRecorder::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  recorded_ = evicted_ = 0;
}

std::vector<std::uint8_t> FlightRecorder::encode() const {
  std::lock_guard lock(mu_);
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(kMagic[0]));
  out.push_back(static_cast<std::uint8_t>(kMagic[1]));
  out.push_back(static_cast<std::uint8_t>(kMagic[2]));
  out.push_back(kRecorderVersion);
  out.push_back(header_.pdme_dedup ? 0x01 : 0x00);
  put_u32(out, header_.plant_count);
  put_u64(out, header_.seed);
  put_u32(out, static_cast<std::uint32_t>(ring_.size()));
  for (const RecorderFrame& frame : ring_) {
    out.push_back(static_cast<std::uint8_t>(frame.kind));
    put_u64(out, static_cast<std::uint64_t>(frame.time_us));
    put_str(out, frame.from);
    put_str(out, frame.to);
    put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
    out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  }
  return out;
}

bool FlightRecorder::dump(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = encode();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = std::fclose(f) == 0 && written == bytes.size();
  return ok;
}

std::optional<FlightRecorder::Decoded> FlightRecorder::decode(
    std::span<const std::uint8_t> bytes) {
  Cursor c{bytes};
  std::uint8_t m0 = 0, m1 = 0, m2 = 0, version = 0, flags = 0;
  if (!c.u8(m0) || !c.u8(m1) || !c.u8(m2) || !c.u8(version) || !c.u8(flags)) {
    return std::nullopt;
  }
  if (m0 != kMagic[0] || m1 != kMagic[1] || m2 != kMagic[2]) {
    return std::nullopt;
  }
  if (version != kRecorderVersion) return std::nullopt;

  Decoded out;
  out.header.version = version;
  out.header.pdme_dedup = (flags & 0x01) != 0;
  std::uint64_t seed = 0;
  std::uint32_t plant_count = 0, frame_count = 0;
  if (!c.u32(plant_count) || !c.u64(seed) || !c.u32(frame_count)) {
    return std::nullopt;
  }
  out.header.plant_count = plant_count;
  out.header.seed = seed;

  // Each frame needs at least kind + time + three u32 lengths: reject frame
  // counts the remaining bytes cannot possibly hold (memory-bomb guard).
  constexpr std::size_t kMinFrameBytes = 1 + 8 + 4 + 4 + 4;
  if (frame_count > c.remaining() / kMinFrameBytes) return std::nullopt;

  out.frames.reserve(frame_count);
  for (std::uint32_t i = 0; i < frame_count; ++i) {
    RecorderFrame frame;
    std::uint8_t kind = 0;
    std::uint64_t time = 0;
    if (!c.u8(kind) || !c.u64(time) || !c.str(frame.from) ||
        !c.str(frame.to) || !c.bytes(frame.payload)) {
      return std::nullopt;
    }
    if (kind != static_cast<std::uint8_t>(FrameKind::NetMessage) &&
        kind != static_cast<std::uint8_t>(FrameKind::Event)) {
      return std::nullopt;
    }
    frame.kind = static_cast<FrameKind>(kind);
    frame.time_us = static_cast<std::int64_t>(time);
    out.frames.push_back(std::move(frame));
  }
  if (c.remaining() != 0) return std::nullopt;  // trailing garbage
  return out;
}

std::optional<FlightRecorder::Decoded> FlightRecorder::load(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return decode(bytes);
}

}  // namespace mpros::telemetry
