file(REMOVE_RECURSE
  "libmpros_db.a"
)
