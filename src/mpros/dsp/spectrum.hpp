#pragma once
// Amplitude/power spectra and spectral feature extraction.
//
// The DLI-style rule engine reasons over "orders" — spectral amplitude at
// multiples of shaft speed — so this module offers both a raw Hz-axis
// spectrum and an order-normalized view, plus peak extraction with parabolic
// interpolation for sub-bin frequency accuracy.

#include <cstddef>
#include <span>
#include <vector>

#include "mpros/dsp/window.hpp"

namespace mpros::dsp {

/// Single-sided amplitude spectrum of a real signal.
struct Spectrum {
  std::vector<double> amplitude;  // peak amplitude per bin (signal units)
  double bin_hz = 0.0;            // frequency resolution
  double sample_rate_hz = 0.0;

  [[nodiscard]] std::size_t bins() const { return amplitude.size(); }
  [[nodiscard]] double freq_of_bin(std::size_t i) const {
    return static_cast<double>(i) * bin_hz;
  }
  /// Amplitude at the bin nearest `hz` (0 beyond Nyquist).
  [[nodiscard]] double amplitude_at(double hz) const;
  /// Largest amplitude in [lo_hz, hi_hz].
  [[nodiscard]] double band_peak(double lo_hz, double hi_hz) const;
  /// Sum of squared amplitudes in [lo_hz, hi_hz] (band energy proxy).
  [[nodiscard]] double band_energy(double lo_hz, double hi_hz) const;
  /// Total energy across all bins.
  [[nodiscard]] double total_energy() const;
};

struct SpectrumConfig {
  WindowKind window = WindowKind::Hann;
  std::size_t fft_size = 0;  // 0 = next power of two >= input length
};

/// Compute a single-sided amplitude spectrum. Amplitudes are corrected for
/// window coherent gain so a unit sine reads ~1.0 at its bin.
[[nodiscard]] Spectrum amplitude_spectrum(std::span<const double> x,
                                          double sample_rate_hz,
                                          const SpectrumConfig& cfg = {});

/// Allocation-free variant: writes into `out`, reusing its capacity. With a
/// warmed PlanCache/WindowCache and a steady transform size this performs
/// zero heap allocation, which is what the per-DC acquisition loop runs.
void amplitude_spectrum(std::span<const double> x, double sample_rate_hz,
                        const SpectrumConfig& cfg, Spectrum& out);

/// Welch-averaged power spectral density over 50%-overlapping segments.
/// Returns per-bin power (signal units squared per bin).
[[nodiscard]] Spectrum welch_psd(std::span<const double> x,
                                 double sample_rate_hz,
                                 std::size_t segment_size,
                                 WindowKind window = WindowKind::Hann);

/// Allocation-free variant of welch_psd; see amplitude_spectrum above.
void welch_psd(std::span<const double> x, double sample_rate_hz,
               std::size_t segment_size, WindowKind window, Spectrum& out);

struct SpectralPeak {
  double freq_hz = 0.0;
  double amplitude = 0.0;
};

/// Extract up to `max_peaks` local maxima above `min_amplitude`, strongest
/// first, with parabolic interpolation of frequency and amplitude.
/// Flat-topped (2-bin plateau) peaks — common when a tone lands exactly
/// between bins — are reported once, centered on the plateau.
[[nodiscard]] std::vector<SpectralPeak> find_peaks(const Spectrum& s,
                                                   std::size_t max_peaks,
                                                   double min_amplitude = 0.0);

/// Amplitude at a given order (multiple of shaft speed), searching within
/// ±`tolerance` orders to absorb speed estimation error.
[[nodiscard]] double order_amplitude(const Spectrum& s, double shaft_hz,
                                     double order, double tolerance = 0.05);

}  // namespace mpros::dsp
