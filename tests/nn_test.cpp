// Neural substrate tests: layer gradients, training convergence, the WNN
// fault classifier on synthetic plant data.

#include <gtest/gtest.h>

#include <cmath>

#include "mpros/common/rng.hpp"
#include "mpros/mpros/wnn_training.hpp"
#include "mpros/nn/classifier.hpp"
#include "mpros/nn/layers.hpp"
#include "mpros/nn/network.hpp"
#include "mpros/plant/vibration.hpp"
#include "mpros/rules/believability.hpp"

namespace mpros::nn {
namespace {

TEST(SoftmaxTest, NormalizedAndOrderPreserving) {
  const std::vector<double> logits = {1.0, 3.0, 2.0};
  const std::vector<double> p = softmax(logits);
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(p[1], p[2]);
  EXPECT_GT(p[2], p[0]);
}

TEST(SoftmaxTest, StableForLargeLogits) {
  const std::vector<double> logits = {1000.0, 999.0};
  const std::vector<double> p = softmax(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

TEST(WaveletLayerTest, MexicanHatProperties) {
  EXPECT_DOUBLE_EQ(WaveletLayer::psi(0.0), 1.0);
  EXPECT_NEAR(WaveletLayer::psi(1.0), 0.0, 1e-12);  // zero crossing at |z|=1
  EXPECT_LT(WaveletLayer::psi(2.0), 0.0);           // negative side lobe
  EXPECT_NEAR(WaveletLayer::psi(6.0), 0.0, 1e-6);   // decays
  EXPECT_NEAR(WaveletLayer::dpsi(0.0), 0.0, 1e-12); // extremum at 0
}

/// Finite-difference check of a layer's input gradient.
template <typename MakeLayer>
void check_input_gradient(MakeLayer make_layer, std::size_t in,
                          std::size_t out) {
  Rng rng(55);
  auto layer = make_layer();
  std::vector<double> x(in);
  for (double& v : x) v = rng.uniform(-1, 1);
  std::vector<double> grad_out(out);
  for (double& v : grad_out) v = rng.uniform(-1, 1);

  // Analytic gradient.
  layer->forward(x);
  const auto grad_span = layer->backward(grad_out);
  const std::vector<double> analytic(grad_span.begin(), grad_span.end());

  // Numeric gradient of L = grad_out . layer(x).
  const auto loss = [&](const std::vector<double>& input) {
    const auto y = layer->forward(input);
    double l = 0.0;
    for (std::size_t i = 0; i < out; ++i) l += grad_out[i] * y[i];
    return l;
  };
  constexpr double kEps = 1e-6;
  for (std::size_t i = 0; i < in; ++i) {
    std::vector<double> xp = x, xm = x;
    xp[i] += kEps;
    xm[i] -= kEps;
    const double numeric = (loss(xp) - loss(xm)) / (2.0 * kEps);
    EXPECT_NEAR(analytic[i], numeric, 1e-4) << "input " << i;
  }
}

TEST(DenseLayerTest, InputGradientMatchesFiniteDifference) {
  Rng rng(56);
  check_input_gradient(
      [&] { return std::make_unique<DenseLayer>(5, 3, Activation::Tanh, rng); },
      5, 3);
}

TEST(WaveletLayerTest, InputGradientMatchesFiniteDifference) {
  Rng rng(57);
  check_input_gradient(
      [&] { return std::make_unique<WaveletLayer>(4, 6, rng); }, 4, 6);
}

TEST(NetworkTest, LearnsXor) {
  Rng rng(58);
  Network net;
  net.add_dense(2, 8, Activation::Tanh, rng);
  net.add_dense(8, 2, Activation::Linear, rng);

  std::vector<Example> examples = {
      {{0.0, 0.0}, 0}, {{0.0, 1.0}, 1}, {{1.0, 0.0}, 1}, {{1.0, 1.0}, 0}};
  TrainConfig cfg;
  cfg.learning_rate = 0.1;
  cfg.epochs = 2000;
  cfg.batch_size = 4;
  cfg.target_loss = 0.02;
  const TrainStats stats = net.train(examples, cfg, rng);
  EXPECT_LT(stats.final_loss, 0.1);
  EXPECT_DOUBLE_EQ(net.accuracy(examples), 1.0);
}

TEST(NetworkTest, WaveletNetworkLearnsLocalizedFunction) {
  // A bump classifier: class 1 iff |x - 0.5| < 0.2 — localization is what
  // wavelons are for.
  Rng rng(59);
  Network net;
  net.add_wavelet(1, 10, rng);
  net.add_dense(10, 2, Activation::Linear, rng);

  std::vector<Example> examples;
  for (int i = 0; i <= 60; ++i) {
    const double x = i / 60.0;
    examples.push_back({{x}, std::fabs(x - 0.5) < 0.2 ? 1u : 0u});
  }
  TrainConfig cfg;
  cfg.learning_rate = 0.05;
  cfg.epochs = 1500;
  cfg.target_loss = 0.05;
  net.train(examples, cfg, rng);
  EXPECT_GT(net.accuracy(examples), 0.9);
}

TEST(NetworkTest, PredictReturnsDistribution) {
  Rng rng(60);
  Network net;
  net.add_dense(3, 4, Activation::Tanh, rng);
  net.add_dense(4, 5, Activation::Linear, rng);
  const std::vector<double> x = {0.1, -0.5, 2.0};
  const std::vector<double> p = net.predict(x);
  ASSERT_EQ(p.size(), 5u);
  double sum = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(WnnLabelTest, RoundTrip) {
  EXPECT_EQ(wnn_label(std::nullopt), 0u);
  EXPECT_FALSE(wnn_mode(0).has_value());
  for (const auto m : domain::all_failure_modes()) {
    EXPECT_EQ(wnn_mode(wnn_label(m)), m);
  }
  EXPECT_EQ(kWnnClassCount, 13u);
}

TEST(WnnClassifierTest, FeatureVectorMatchesDeclaredSize) {
  const WnnClassifier classifier;
  std::vector<double> waveform(4096, 0.1);
  const auto f = classifier.features(waveform, 40960.0, WnnContext{});
  EXPECT_EQ(f.size(), classifier.feature_count());
}

TEST(WnnClassifierTest, TrainsToHighAccuracyOnSyntheticFaults) {
  WnnTrainingConfig cfg;
  cfg.windows_per_class = 8;
  cfg.classifier.train.epochs = 150;
  const auto windows = make_training_windows(cfg);
  WnnClassifier classifier(cfg.classifier, 123);
  const TrainStats stats = classifier.train(windows);
  EXPECT_GT(stats.final_accuracy, 0.85);
}

TEST(WnnClassifierTest, DiagnosesInjectedImbalance) {
  WnnTrainingConfig cfg;
  cfg.windows_per_class = 8;
  cfg.classifier.train.epochs = 150;
  auto classifier = train_wnn_classifier(cfg);

  // A fresh imbalance window from a different seed.
  plant::VibrationSynthesizer synth(domain::navy_chiller_signature(), 999);
  plant::Severities severities{};
  severities[static_cast<std::size_t>(domain::FailureMode::MotorImbalance)] =
      0.8;
  std::vector<double> waveform(4096);
  synth.acceleration(plant::MachinePoint::Motor, severities, 0.8, 0.0,
                     40960.0, waveform);

  rules::BelievabilityTable beliefs;
  WnnContext ctx;
  ctx.load_fraction = 0.8;
  const auto diagnoses =
      classifier->diagnose(waveform, 40960.0, ctx, beliefs, 0.3);
  ASSERT_FALSE(diagnoses.empty());
  EXPECT_EQ(diagnoses.front().mode, domain::FailureMode::MotorImbalance);
}

TEST(WeightFlashingTest, ExportImportReproducesPredictions) {
  Rng rng(71);
  Network trained;
  trained.add_wavelet(4, 6, rng);
  trained.add_dense(6, 3, Activation::Linear, rng);
  std::vector<Example> examples;
  Rng data_rng(72);
  for (int i = 0; i < 60; ++i) {
    std::vector<double> f = {data_rng.uniform(-1, 1), data_rng.uniform(-1, 1),
                             data_rng.uniform(-1, 1), data_rng.uniform(-1, 1)};
    examples.push_back({f, f[0] > 0 ? (f[1] > 0 ? 0u : 1u) : 2u});
  }
  TrainConfig cfg;
  cfg.epochs = 150;
  trained.train(examples, cfg, rng);

  // "Flash" into a fresh network with the identical architecture but
  // different random initialization.
  Rng other(999);
  Network flashed;
  flashed.add_wavelet(4, 6, other);
  flashed.add_dense(6, 3, Activation::Linear, other);
  const auto weights = trained.export_weights();
  EXPECT_EQ(weights.size(), trained.weight_count());
  flashed.import_weights(weights);

  for (const Example& e : examples) {
    const auto pa = trained.predict(e.features);
    const auto pb = flashed.predict(e.features);
    for (std::size_t c = 0; c < pa.size(); ++c) {
      EXPECT_NEAR(pa[c], pb[c], 1e-12);
    }
  }
}

TEST(WeightFlashingTest, ClassifierFlashPreservesDiagnosis) {
  WnnTrainingConfig cfg;
  cfg.windows_per_class = 6;
  cfg.classifier.train.epochs = 80;
  auto trained = train_wnn_classifier(cfg);

  WnnClassifier flashed(cfg.classifier, /*seed=*/424242);
  flashed.import_weights(trained->export_weights());
  EXPECT_TRUE(flashed.trained());

  plant::VibrationSynthesizer synth(domain::navy_chiller_signature(), 31);
  plant::Severities severities{};
  severities[static_cast<std::size_t>(domain::FailureMode::MotorImbalance)] =
      0.8;
  std::vector<double> w(4096);
  synth.acceleration(plant::MachinePoint::Motor, severities, 0.8, 0.0,
                     40960.0, w);
  WnnContext ctx;
  const auto pa = trained->probabilities(w, 40960.0, ctx);
  const auto pb = flashed.probabilities(w, 40960.0, ctx);
  for (std::size_t c = 0; c < pa.size(); ++c) {
    EXPECT_NEAR(pa[c], pb[c], 1e-12);
  }
}

}  // namespace
}  // namespace mpros::nn
