#include "mpros/rules/believability.hpp"

#include "mpros/common/assert.hpp"

namespace mpros::rules {
namespace {

std::size_t index_of(domain::FailureMode mode) {
  const auto i = static_cast<std::size_t>(mode);
  MPROS_EXPECTS(i < domain::kFailureModeCount);
  return i;
}

}  // namespace

BelievabilityTable::BelievabilityTable(double prior_confirmed,
                                       double prior_reversed)
    : prior_confirmed_(prior_confirmed), prior_reversed_(prior_reversed) {
  MPROS_EXPECTS(prior_confirmed > 0.0 && prior_reversed > 0.0);
}

void BelievabilityTable::record_confirmation(domain::FailureMode mode) {
  counts_[index_of(mode)].confirmed += 1.0;
}

void BelievabilityTable::record_reversal(domain::FailureMode mode) {
  counts_[index_of(mode)].reversed += 1.0;
}

double BelievabilityTable::belief(domain::FailureMode mode) const {
  const Counts& c = counts_[index_of(mode)];
  return (c.confirmed + prior_confirmed_) /
         (c.confirmed + c.reversed + prior_confirmed_ + prior_reversed_);
}

double BelievabilityTable::confirmations(domain::FailureMode mode) const {
  return counts_[index_of(mode)].confirmed;
}

double BelievabilityTable::reversals(domain::FailureMode mode) const {
  return counts_[index_of(mode)].reversed;
}

}  // namespace mpros::rules
