#include "mpros/pdme/fusion_core.hpp"

#include <algorithm>
#include <cstdio>

#include "mpros/common/log.hpp"
#include "mpros/telemetry/metrics.hpp"
#include "mpros/telemetry/trace.hpp"

namespace mpros::pdme {

using domain::FailureMode;

namespace {

/// Registry handles resolved once; observations are relaxed atomics after.
/// Counters are process-wide, shared by every core (the Registry dedups by
/// name), so sharded and inline runs report through the same names.
struct CoreMetrics {
  telemetry::Counter& reports_accepted;
  telemetry::Counter& duplicates_dropped;
  telemetry::Counter& malformed_dropped;
  telemetry::Counter& fusion_updates;
  telemetry::Counter& sensor_fault_reports;
  telemetry::Histogram& fuse_wall_us;

  static CoreMetrics& instance() {
    static auto& reg = telemetry::Registry::instance();
    static CoreMetrics m{
        reg.counter("pdme.reports_accepted"),
        reg.counter("pdme.duplicates_dropped"),
        reg.counter("pdme.malformed_dropped"),
        reg.counter("pdme.fusion_updates"),
        reg.counter("pdme.sensor_fault_reports"),
        reg.histogram("pdme.fuse_wall_us")};
    return m;
  }
};

}  // namespace

std::string report_signature(const net::FailureReport& r) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%llu/%llu/%llu/%llu/%lld/%.6f",
                static_cast<unsigned long long>(r.dc.value()),
                static_cast<unsigned long long>(r.knowledge_source.value()),
                static_cast<unsigned long long>(r.sensed_object.value()),
                static_cast<unsigned long long>(r.machine_condition.value()),
                static_cast<long long>(r.timestamp.micros()), r.belief);
  return buf;
}

void FusionCore::count_duplicate() {
  ++stats_.duplicates_dropped;
  CoreMetrics::instance().duplicates_dropped.inc();
}

void FusionCore::fuse(const net::FailureReport& r, std::uint64_t order,
                      bool retest_enabled) {
  CoreMetrics& metrics = CoreMetrics::instance();
  // Sensor-fault conclusions get their own track: fusing "the sensor lies"
  // into Dempster-Shafer would steal mass from real machinery modes.
  if (domain::is_sensor_fault_condition(r.machine_condition)) {
    note_sensor_fault(r);
    return;
  }
  if (!r.machine_condition.valid() ||
      r.machine_condition.value() > domain::kFailureModeCount) {
    ++stats_.malformed_dropped;
    metrics.malformed_dropped.inc();
    return;
  }
  // Stage timing rides the trace: traced reports (every DC test stamps one)
  // get the span and feed the wall-clock histogram; untraced bulk ingest
  // pays neither the clock reads nor the observe.
  std::optional<telemetry::StageTimer> span;
  if (r.trace != 0) {
    span.emplace("pdme.fuse", r.trace, r.timestamp.micros(),
                 &metrics.fuse_wall_us);
  }
  const FailureMode mode = domain::failure_mode(r.machine_condition);

  ++stats_.reports_accepted;
  metrics.reports_accepted.inc();
  reports_[r.sensed_object.value()].push_back(r);

  // Diagnostic fusion: the report's Belief field becomes simple support.
  // apply() is update() minus the per-call GroupState summary allocation;
  // readers pull the summary lazily via group_state()/prioritized_list().
  diagnostics_.apply(r.sensed_object, mode, std::clamp(r.belief, 0.0, 1.0));

  // Prognostic fusion: conservative envelope per (machine, mode) (§5.4),
  // fused in place through reusable scratch.
  ModeTrack& track = tracks_[ModeKey{r.sensed_object.value(), mode}];
  if (!r.prognostics.empty()) {
    prog_points_.clear();
    for (const net::PrognosticPair& p : r.prognostics) {
      prog_points_.push_back(
          {SimTime::from_seconds(p.time_seconds), p.probability});
    }
    track.fused_prognosis.fuse_in_place(
        {prog_points_.data(), prog_points_.size()}, fuse_scratch_);
  }
  track.max_severity = std::max(track.max_severity, r.severity);
  track.trend.observe(r.timestamp, std::clamp(r.severity, 0.0, 1.0));
  track.latest_report = std::max(track.latest_report, r.timestamp);
  ++track.reports;
  ++stats_.fusion_updates;
  metrics.fusion_updates.inc();
  if (retest_enabled) maybe_record_retest(r, order);

  MPROS_LOG_DEBUG("pdme", "fused %s for obj=%llu belief=%.2f",
                  domain::to_string(mode),
                  static_cast<unsigned long long>(r.sensed_object.value()),
                  r.belief);
}

void FusionCore::note_sensor_fault(const net::FailureReport& r) {
  CoreMetrics& metrics = CoreMetrics::instance();
  ++stats_.reports_accepted;
  metrics.reports_accepted.inc();
  ++stats_.sensor_fault_reports;
  metrics.sensor_fault_reports.inc();
  reports_[r.sensed_object.value()].push_back(r);

  const domain::SensorFaultKind kind =
      domain::sensor_fault_kind(r.machine_condition);
  SensorFaultRecord& rec = sensor_faults_[{
      r.dc.value(), r.sensed_object.value(), static_cast<std::uint64_t>(kind)}];
  if (rec.at.micros() > r.timestamp.micros()) return;  // stale arrival
  rec.dc = r.dc;
  rec.object = r.sensed_object;
  rec.kind = kind;
  rec.severity = r.severity;
  rec.at = r.timestamp;
  rec.explanation = r.explanation;
  if (r.severity > 0.0) {
    MPROS_LOG_WARN("pdme", "sensor fault from dc-%llu: %s",
                   static_cast<unsigned long long>(r.dc.value()),
                   r.explanation.c_str());
  }
}

void FusionCore::maybe_record_retest(const net::FailureReport& r,
                                     std::uint64_t order) {
  if (!cfg_.auto_retest) return;
  if (r.severity < cfg_.retest_severity) return;
  const FailureMode mode = domain::failure_mode(r.machine_condition);
  const fusion::GroupState group =
      diagnostics_.state(r.sensed_object, domain::logical_group(mode));
  // Already corroborated: several reports and little unknown mass left. A
  // first-ever severe report always earns a closer look, however confident
  // its source was.
  if (group.report_count > 1 && group.unknown < cfg_.retest_unknown) return;
  pending_retests_.push_back(
      PendingRetest{r.dc, r.sensed_object, mode, r.timestamp, order});
}

std::vector<PendingRetest> FusionCore::take_pending_retests() {
  std::vector<PendingRetest> out;
  out.swap(pending_retests_);
  return out;
}

std::vector<std::uint64_t> FusionCore::machines() const {
  std::vector<std::uint64_t> out;
  for (const auto& [key, track] : tracks_) {
    if (out.empty() || out.back() != key.machine) out.push_back(key.machine);
  }
  return out;  // tracks_ is key-ordered, so this is ascending and unique
}

std::vector<MaintenanceItem> FusionCore::prioritized_list(
    ObjectId machine) const {
  std::vector<MaintenanceItem> items;
  for (const fusion::GroupState& gs : diagnostics_.states(machine)) {
    for (const fusion::ModeBelief& mb : gs.modes) {
      if (mb.belief <= 1e-9) continue;
      MaintenanceItem item;
      item.machine = machine;
      item.mode = mb.mode;
      item.fused_belief = mb.belief;
      item.plausibility = mb.plausibility;
      item.report_count = gs.report_count;

      const auto track = tracks_.find(ModeKey{machine.value(), mb.mode});
      if (track != tracks_.end()) {
        item.max_severity = track->second.max_severity;
        if (!track->second.fused_prognosis.empty()) {
          item.median_ttf =
              track->second.fused_prognosis.time_to_probability(0.5);
          item.p90_ttf = track->second.fused_prognosis.time_to_probability(0.9);
        }
        item.trend_ttf =
            track->second.trend.time_to_failure(track->second.latest_report);
      }
      item.priority = item.fused_belief * std::max(0.1, item.max_severity);
      items.push_back(item);
    }
  }
  std::sort(items.begin(), items.end(),
            [](const MaintenanceItem& a, const MaintenanceItem& b) {
              return a.priority > b.priority;
            });
  return items;
}

std::optional<fusion::PrognosticVector> FusionCore::prognosis(
    ObjectId machine, FailureMode mode) const {
  const auto it = tracks_.find(ModeKey{machine.value(), mode});
  if (it == tracks_.end() || it->second.fused_prognosis.empty()) {
    return std::nullopt;
  }
  return it->second.fused_prognosis;
}

fusion::PrognosticVector FusionCore::trend_prognosis(ObjectId machine,
                                                     FailureMode mode) const {
  const auto it = tracks_.find(ModeKey{machine.value(), mode});
  if (it == tracks_.end()) return fusion::PrognosticVector{};
  return it->second.trend.project(it->second.latest_report);
}

std::vector<net::FailureReport> FusionCore::reports_for(
    ObjectId machine) const {
  const auto it = reports_.find(machine.value());
  if (it == reports_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

void FusionCore::reset_machine(ObjectId machine) {
  diagnostics_.reset(machine);
  reports_.erase(machine.value());
  for (auto it = tracks_.begin(); it != tracks_.end();) {
    if (it->first.machine == machine.value()) {
      it = tracks_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace mpros::pdme
