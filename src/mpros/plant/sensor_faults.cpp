#include "mpros/plant/sensor_faults.hpp"

#include <cmath>
#include <limits>

#include "mpros/common/assert.hpp"
#include "mpros/common/rng.hpp"

namespace mpros::plant {

namespace {

std::uint64_t hash_channel(std::string_view channel) {
  // FNV-1a, folded through splitmix64 for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : channel) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return splitmix64(h);
}

/// Uniform [0,1) from a counter — corruption stays a pure function of its
/// coordinates so acquisition order can never perturb it.
double unit_hash(std::uint64_t x) {
  return static_cast<double>(splitmix64(x) >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(SensorFaultType type) {
  switch (type) {
    case SensorFaultType::StuckAt: return "stuck-at";
    case SensorFaultType::Dropout: return "dropout";
    case SensorFaultType::OutOfRange: return "out-of-range";
    case SensorFaultType::Spike: return "spike";
  }
  return "unknown";
}

const char* vibration_channel(MachinePoint point) {
  switch (point) {
    case MachinePoint::Motor: return "vib.motor";
    case MachinePoint::Gearbox: return "vib.gearbox";
    case MachinePoint::Compressor: return "vib.compressor";
  }
  return "vib.unknown";
}

void SensorFaultInjector::schedule(SensorFaultEvent event) {
  MPROS_EXPECTS(!event.channel.empty());
  MPROS_EXPECTS(event.from < event.to);
  if (event.type == SensorFaultType::Spike) {
    MPROS_EXPECTS(event.spike_fraction > 0.0 && event.spike_fraction <= 1.0);
  }
  events_.push_back(std::move(event));
}

bool SensorFaultInjector::active(std::string_view channel, SimTime now) const {
  for (const SensorFaultEvent& e : events_) {
    if (e.channel == channel && now >= e.from && now < e.to) return true;
  }
  return false;
}

void SensorFaultInjector::corrupt_window(std::string_view channel, SimTime now,
                                         std::span<double> samples) const {
  for (const SensorFaultEvent& e : events_) {
    if (e.channel != channel || now < e.from || now >= e.to) continue;
    switch (e.type) {
      case SensorFaultType::StuckAt:
        for (double& s : samples) s = e.level;
        break;
      case SensorFaultType::Dropout:
        for (double& s : samples) {
          s = std::numeric_limits<double>::quiet_NaN();
        }
        break;
      case SensorFaultType::OutOfRange:
        for (double& s : samples) s += e.level;
        break;
      case SensorFaultType::Spike: {
        const std::uint64_t base =
            seed_ ^ hash_channel(channel) ^
            splitmix64(static_cast<std::uint64_t>(now.micros()));
        for (std::size_t i = 0; i < samples.size(); ++i) {
          const std::uint64_t coord = base + i;
          if (unit_hash(coord) >= e.spike_fraction) continue;
          const double sign = (splitmix64(coord) & 1) != 0u ? 1.0 : -1.0;
          samples[i] += sign * e.level;
        }
        break;
      }
    }
  }
}

double SensorFaultInjector::corrupt_value(std::string_view channel,
                                          SimTime now, double value) const {
  for (const SensorFaultEvent& e : events_) {
    if (e.channel != channel || now < e.from || now >= e.to) continue;
    switch (e.type) {
      case SensorFaultType::StuckAt:
        value = e.level;
        break;
      case SensorFaultType::Dropout:
        value = std::numeric_limits<double>::quiet_NaN();
        break;
      case SensorFaultType::OutOfRange:
        value += e.level;
        break;
      case SensorFaultType::Spike: {
        const std::uint64_t coord =
            seed_ ^ hash_channel(channel) ^
            splitmix64(static_cast<std::uint64_t>(now.micros()));
        if (unit_hash(coord) < e.spike_fraction) {
          value += ((splitmix64(coord) & 1) != 0u ? 1.0 : -1.0) * e.level;
        }
        break;
      }
    }
  }
  return value;
}

}  // namespace mpros::plant
