# Empty dependencies file for mpros_oosm.
# This may be replaced when dependencies are built.
