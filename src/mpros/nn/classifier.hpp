#pragma once
// The Wavelet-Neural-Network fault classifier (paper §6.2 substitute).
//
// "Features extracted from input data are organized into a feature vector,
// which is fed into the WNN" — the paper lists peak amplitude, standard
// deviation, cepstrum, DCT coefficients, wavelet maps, temperature and
// speed. This classifier computes exactly that vector from a vibration
// waveform plus process context, feeds it through a wavelon hidden layer,
// and softmax-classifies across {Normal} ∪ the 12 failure modes.
//
// Unlike the steady-state DLI rule engine, the WNN's wavelet features are
// localized, so it keeps information about transients within the window —
// the paper's stated reason for including it.

#include <optional>
#include <span>
#include <vector>

#include "mpros/common/rng.hpp"
#include "mpros/domain/failure_modes.hpp"
#include "mpros/nn/network.hpp"
#include "mpros/rules/engine.hpp"

namespace mpros::nn {

/// Process context accompanying a vibration window.
struct WnnContext {
  double shaft_hz = 29.6;
  double bearing_temp_c = 55.0;
  double load_fraction = 0.8;
};

/// Class index space: 0 = Normal, 1 + FailureMode otherwise.
inline constexpr std::size_t kWnnClassCount = 1 + domain::kFailureModeCount;

[[nodiscard]] std::size_t wnn_label(std::optional<domain::FailureMode> mode);
[[nodiscard]] std::optional<domain::FailureMode> wnn_mode(std::size_t label);

struct LabelledWindow {
  std::vector<double> waveform;
  double sample_rate_hz = 40960.0;
  WnnContext context;
  std::size_t label = 0;
};

/// Classifier hyper-parameters.
struct WnnConfig {
  std::size_t wavelons = 24;
  std::size_t dct_coeffs = 8;
  std::size_t wavelet_levels = 6;
  TrainConfig train;
};

class WnnClassifier {
 public:
  explicit WnnClassifier(WnnConfig cfg = WnnConfig(),
                         std::uint64_t seed = 0x57AE1E7);

  /// The §6.2 feature vector for one window.
  [[nodiscard]] std::vector<double> features(std::span<const double> waveform,
                                             double sample_rate_hz,
                                             const WnnContext& ctx) const;

  /// Train on labelled windows (features are computed internally).
  TrainStats train(std::span<const LabelledWindow> windows);

  /// Class probabilities (index space per wnn_label()).
  [[nodiscard]] std::vector<double> probabilities(
      std::span<const double> waveform, double sample_rate_hz,
      const WnnContext& ctx);

  /// Fired diagnoses: every non-Normal class whose probability exceeds
  /// `threshold`, packaged as rules::Diagnosis (belief = probability).
  [[nodiscard]] std::vector<rules::Diagnosis> diagnose(
      std::span<const double> waveform, double sample_rate_hz,
      const WnnContext& ctx, const rules::BelievabilityTable& beliefs,
      double threshold = 0.30);

  [[nodiscard]] std::size_t feature_count() const;
  [[nodiscard]] bool trained() const { return trained_; }

  /// Weight flashing: export a trained classifier's parameters and load
  /// them into another classifier built with the same WnnConfig.
  [[nodiscard]] std::vector<double> export_weights() const {
    return net_.export_weights();
  }
  void import_weights(std::span<const double> weights) {
    net_.import_weights(weights);
    trained_ = true;
  }

 private:
  WnnConfig cfg_;
  Rng rng_;
  Network net_;
  bool trained_ = false;
};

}  // namespace mpros::nn
