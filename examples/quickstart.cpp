// Quickstart: assemble a one-chiller MPROS deployment, inject a bearing
// fault, run two simulated hours, and print the PDME browser screen.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "mpros/mpros/mpros.hpp"

int main() {
  using namespace mpros;

  // 1. Build the ship: one chiller plant, its Data Concentrator, the
  //    simulated network, and the PDME with its Object-Oriented Ship Model.
  ShipSystemConfig cfg;
  cfg.plant_count = 1;
  cfg.dc_template.vibration_period = SimTime::from_seconds(600);
  ShipSystem ship(cfg);

  // 2. Seed a progressive compressor-bearing fault (the kind of incipient
  //    failure condition-based maintenance exists to catch).
  plant::FaultEvent fault;
  fault.mode = domain::FailureMode::CompressorBearingWear;
  fault.onset = SimTime::from_hours(0.25);
  fault.ramp = SimTime::from_hours(1.0);
  fault.max_severity = 0.85;
  fault.profile = plant::GrowthProfile::Accelerating;
  ship.chiller(0).faults().schedule(fault);

  // 3. Run two simulated hours: the DC runs vibration tests and process
  //    scans; reports cross the ship's network; the PDME fuses them.
  ship.run_until(SimTime::from_hours(2.0));

  // 4. Inspect the results the way a maintenance officer would.
  std::printf("%s\n", pdme::render_summary(ship.pdme(), ship.model()).c_str());
  std::printf("%s\n",
              pdme::render_machine(ship.pdme(), ship.model(),
                                   ship.plant_objects(0).compressor)
                  .c_str());
  return 0;
}
