file(REMOVE_RECURSE
  "CMakeFiles/mpros_dc.dir/data_concentrator.cpp.o"
  "CMakeFiles/mpros_dc.dir/data_concentrator.cpp.o.d"
  "CMakeFiles/mpros_dc.dir/scheduler.cpp.o"
  "CMakeFiles/mpros_dc.dir/scheduler.cpp.o.d"
  "libmpros_dc.a"
  "libmpros_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
