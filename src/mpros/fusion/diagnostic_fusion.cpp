#include "mpros/fusion/diagnostic_fusion.hpp"

#include "mpros/common/assert.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::fusion {

using domain::FailureMode;
using domain::LogicalGroup;

DiagnosticFusion::DiagnosticFusion() {
  frames_.reserve(domain::kLogicalGroupCount);
  for (std::size_t g = 0; g < domain::kLogicalGroupCount; ++g) {
    std::vector<std::string> names;
    for (const FailureMode m :
         domain::modes_in_group(static_cast<LogicalGroup>(g))) {
      names.emplace_back(domain::to_string(m));
    }
    frames_.emplace_back(std::move(names));
  }
}

const FrameOfDiscernment& DiagnosticFusion::frame(LogicalGroup group) const {
  const auto g = static_cast<std::size_t>(group);
  MPROS_EXPECTS(g < frames_.size());
  return frames_[g];
}

HypothesisSet DiagnosticFusion::set_of(LogicalGroup group,
                                       FailureMode mode) const {
  const auto members = domain::modes_in_group(group);
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == mode) return frame(group).singleton(i);
  }
  MPROS_EXPECTS(false && "mode not in group");
  return 0;
}

DiagnosticFusion::Cell& DiagnosticFusion::cell(ObjectId machine,
                                               LogicalGroup group) {
  const Key key{machine.value(), group};
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    it = cells_
             .emplace(key, Cell{MassFunction::vacuous(frame(group)), 0.0, 0})
             .first;
  }
  return it->second;
}

GroupState DiagnosticFusion::update(ObjectId machine, FailureMode mode,
                                    double belief) {
  const FailureMode modes[] = {mode};
  return update_set(machine, modes, belief);
}

void DiagnosticFusion::apply(ObjectId machine, FailureMode mode,
                             double belief) {
  const LogicalGroup group = domain::logical_group(mode);
  apply_focus(machine, group, set_of(group, mode), belief);
}

GroupState DiagnosticFusion::update_set(
    ObjectId machine, std::span<const domain::FailureMode> modes,
    double belief) {
  MPROS_EXPECTS(!modes.empty());
  const LogicalGroup group = domain::logical_group(modes.front());

  HypothesisSet focus = 0;
  for (const FailureMode m : modes) {
    MPROS_EXPECTS(domain::logical_group(m) == group);
    focus |= set_of(group, m);
  }

  Cell& c = apply_focus(machine, group, focus, belief);
  return summarize(group, c);
}

DiagnosticFusion::Cell& DiagnosticFusion::apply_focus(ObjectId machine,
                                                      LogicalGroup group,
                                                      HypothesisSet focus,
                                                      double belief) {
  MPROS_EXPECTS(belief >= 0.0 && belief <= 1.0);

  // Re-entrancy audit (E18): this is the only state shared between fusion
  // instances. The sharded PDME runs one DiagnosticFusion per worker, so
  // cells_ is single-threaded per instance; this counter is a magic-static
  // reference (thread-safe init) to a relaxed atomic (thread-safe inc).
  static telemetry::Counter& ds_updates =
      telemetry::Registry::instance().counter("fusion.ds_updates");

  Cell& c = cell(machine, group);
  c.last_conflict = c.mass.combine_simple_support(focus, belief);
  ++c.report_count;
  ds_updates.inc();
  return c;
}

GroupState DiagnosticFusion::summarize(LogicalGroup group,
                                       const Cell& c) const {
  GroupState s;
  s.group = group;
  s.unknown = c.mass.unknown();
  s.last_conflict = c.last_conflict;
  s.report_count = c.report_count;

  const auto members = domain::modes_in_group(group);
  const FrameOfDiscernment& f = frame(group);
  for (std::size_t i = 0; i < members.size(); ++i) {
    const HypothesisSet singleton = f.singleton(i);
    s.modes.push_back(ModeBelief{members[i], c.mass.belief(singleton),
                                 c.mass.plausibility(singleton)});
  }
  return s;
}

GroupState DiagnosticFusion::state(ObjectId machine,
                                   LogicalGroup group) const {
  const Key key{machine.value(), group};
  const auto it = cells_.find(key);
  if (it == cells_.end()) {
    Cell vacuous{MassFunction::vacuous(frame(group)), 0.0, 0};
    return summarize(group, vacuous);
  }
  return summarize(group, it->second);
}

std::vector<GroupState> DiagnosticFusion::states(ObjectId machine) const {
  std::vector<GroupState> out;
  for (const auto& [key, c] : cells_) {
    if (key.machine == machine.value()) out.push_back(summarize(key.group, c));
  }
  return out;
}

void DiagnosticFusion::reset(ObjectId machine) {
  for (auto it = cells_.begin(); it != cells_.end();) {
    if (it->first.machine == machine.value()) {
      it = cells_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace mpros::fusion
