#pragma once
// Membership functions and linguistic variables.
//
// Substrate for the Georgia Tech fuzzy-logic diagnostics (paper §1.1 item 4):
// conclusions drawn from non-vibrational data (temperatures, pressures,
// superheat) through Mamdani inference.

#include <string>
#include <variant>
#include <vector>

namespace mpros::fuzzy {

/// Triangular MF: rises a->b, falls b->c. a==b or b==c give shoulders.
struct Triangular {
  double a, b, c;
};

/// Trapezoidal MF: rises a->b, flat b->c, falls c->d.
struct Trapezoidal {
  double a, b, c, d;
};

/// Gaussian MF centered at mean with width sigma.
struct Gaussian {
  double mean, sigma;
};

class MembershipFunction {
 public:
  MembershipFunction(Triangular t) : f_(t) {}    // NOLINT
  MembershipFunction(Trapezoidal t) : f_(t) {}   // NOLINT
  MembershipFunction(Gaussian g) : f_(g) {}      // NOLINT

  /// Degree of membership in [0,1].
  [[nodiscard]] double grade(double x) const;

 private:
  std::variant<Triangular, Trapezoidal, Gaussian> f_;
};

/// A named term within a linguistic variable ("low", "normal", "high").
struct Term {
  std::string name;
  MembershipFunction mf;
};

/// A linguistic variable over a crisp universe of discourse.
class LinguisticVariable {
 public:
  LinguisticVariable(std::string name, double min, double max);

  LinguisticVariable& add_term(std::string term_name, MembershipFunction mf);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] const std::vector<Term>& terms() const { return terms_; }

  /// Membership of x in the named term; aborts if the term is unknown.
  [[nodiscard]] double grade(const std::string& term_name, double x) const;

  [[nodiscard]] const Term& term(const std::string& term_name) const;
  [[nodiscard]] bool has_term(const std::string& term_name) const;

 private:
  std::string name_;
  double min_, max_;
  std::vector<Term> terms_;
};

/// Convenience: build a 3-term low/normal/high variable with trapezoidal
/// shoulders meeting at `lo_edge` and `hi_edge` (membership overlaps by
/// `overlap` fraction of each edge gap).
[[nodiscard]] LinguisticVariable make_low_normal_high(
    std::string name, double min, double lo_edge, double hi_edge, double max,
    double overlap = 0.25);

}  // namespace mpros::fuzzy
