#pragma once
// Fault injection with progressive severities.
//
// The Navy data the paper leaned on (DLI shipboard collections, Georgia
// Tech seeded-fault rigs, the donated York chiller earmarked for
// destructive testing — §9) is unavailable, so scenarios seed faults here:
// each fault has an onset, a growth profile, and a terminal severity. The
// simulator queries severity_at(t) in [0,1]; 0 = healthy, 1 = imminent
// failure.

#include <array>
#include <optional>
#include <vector>

#include "mpros/common/clock.hpp"
#include "mpros/domain/failure_modes.hpp"

namespace mpros::plant {

enum class GrowthProfile {
  Step,         ///< full severity at onset (seeded-fault style)
  Linear,       ///< ramps linearly from onset to onset+ramp
  Accelerating, ///< quadratic ramp — slow start, fast finish (wear-out)
};

struct FaultEvent {
  domain::FailureMode mode{};
  SimTime onset;
  SimTime ramp = SimTime::from_days(30);  ///< time from onset to max
  double max_severity = 1.0;
  GrowthProfile profile = GrowthProfile::Linear;
};

class FaultInjector {
 public:
  FaultInjector() = default;

  void schedule(FaultEvent event);

  /// Severity of `mode` at time t (max over scheduled events of that mode).
  [[nodiscard]] double severity_at(domain::FailureMode mode, SimTime t) const;

  /// Severities of all 12 modes at time t, indexed by FailureMode value.
  [[nodiscard]] std::array<double, domain::kFailureModeCount> all_at(
      SimTime t) const;

  /// The mode with the highest severity at t (above `threshold`), if any —
  /// the scenario's ground-truth label for scoring E6.
  [[nodiscard]] std::optional<domain::FailureMode> dominant_at(
      SimTime t, double threshold = 0.05) const;

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace mpros::plant
