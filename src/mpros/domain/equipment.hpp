#pragma once
// Equipment kinds and kinematic signatures of the chilled-water system.
//
// The paper's A/C plant "combines several rotating machinery equipment types
// (induction motors, gear transmissions, pumps, and centrifugal compressors)"
// (§2). A MachineSignature carries the kinematic constants a vibration
// analyst needs: shaft speed, bearing defect orders, gear tooth counts, vane
// counts, rotor bars, and line frequency.

#include <cstdint>
#include <string>

namespace mpros::domain {

enum class EquipmentKind : std::uint8_t {
  InductionMotor = 0,
  GearTransmission,
  CentrifugalCompressor,
  CentrifugalPump,
  Evaporator,
  Condenser,
  Chiller,  // the assembled A/C unit
  Ship,
  Deck,
  Sensor,
  Report,           // failure-prediction report objects in the OOSM (§4.2)
  KnowledgeSource,  // expert-system identities in the OOSM (§4.2)
};

[[nodiscard]] const char* to_string(EquipmentKind k);

/// Rolling-element bearing defect frequencies expressed in *orders*
/// (multiples of shaft speed); typical values for an 8-ball bearing.
struct BearingRates {
  double bpfo = 3.05;  ///< ball pass frequency, outer race
  double bpfi = 4.95;  ///< ball pass frequency, inner race
  double bsf = 1.99;   ///< ball spin frequency
  double ftf = 0.38;   ///< fundamental train (cage) frequency
};

/// Kinematic constants of one rotating machine.
struct MachineSignature {
  double shaft_hz = 29.6;       ///< running speed (1780 rpm motor)
  double line_hz = 60.0;        ///< electrical supply frequency
  int rotor_bars = 45;          ///< squirrel-cage bar count
  int pole_pairs = 2;           ///< induction-motor pole pairs
  int gear_teeth_in = 43;       ///< speed-increaser input gear
  int gear_teeth_out = 17;      ///< pinion (compressor side)
  int impeller_vanes = 11;      ///< compressor impeller vane count
  BearingRates bearing;         ///< motor-shaft bearings (orders of shaft_hz)
  /// High-speed-shaft (compressor) bearings, in orders of the HSS; a
  /// different geometry so its tones do not collide with the motor set.
  BearingRates hss_bearing{3.52, 5.48, 2.31, 0.39};

  /// Slip frequency of the induction motor at a load fraction (0..1).
  [[nodiscard]] double slip_hz(double load_fraction) const;
  /// Gear mesh frequency in Hz (input shaft side).
  [[nodiscard]] double gear_mesh_hz() const;
  /// High-speed (compressor) shaft frequency after the speed increaser.
  [[nodiscard]] double high_speed_shaft_hz() const;
  /// Vane passing frequency of the compressor impeller.
  [[nodiscard]] double vane_pass_hz() const;
};

/// The catalog signature for a 450-ton Navy centrifugal chiller drive line.
[[nodiscard]] MachineSignature navy_chiller_signature();

/// Nominal process-variable operating points of a healthy chiller, used by
/// the physics simulator and the fuzzy rulebase alike.
struct ProcessNominals {
  double evap_pressure_kpa = 356.0;      ///< R-134a at ~5 C
  double cond_pressure_kpa = 1017.0;     ///< R-134a at ~40 C
  double chilled_water_supply_c = 6.7;   ///< 44 F
  double chilled_water_return_c = 12.2;  ///< 54 F
  double condenser_water_in_c = 29.4;    ///< 85 F
  double oil_pressure_kpa = 280.0;
  double oil_temperature_c = 50.0;
  double motor_winding_temp_c = 80.0;
  double bearing_temp_c = 55.0;
  double superheat_c = 4.5;
  double motor_current_a = 180.0;  ///< full-load amps
};

[[nodiscard]] ProcessNominals navy_chiller_nominals();

}  // namespace mpros::domain
