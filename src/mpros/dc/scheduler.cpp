#include "mpros/dc/scheduler.hpp"

#include "mpros/common/assert.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::dc {

EventScheduler::TaskId EventScheduler::add_periodic(std::string name,
                                                    SimTime first_due,
                                                    SimTime period,
                                                    Task task) {
  MPROS_EXPECTS(task != nullptr);
  MPROS_EXPECTS(period.micros() > 0);
  tasks_.push_back(TaskRecord{std::move(name), period, std::move(task)});
  const TaskId id = tasks_.size() - 1;
  queue_.push(Due{first_due, next_sequence_++, id, true});
  return id;
}

void EventScheduler::request_now(TaskId id) {
  MPROS_EXPECTS(id < tasks_.size());
  // Fires at whatever deadline the next run_until() covers.
  queue_.push(Due{SimTime(0), next_sequence_++, id, false});
}

void EventScheduler::set_period(TaskId id, SimTime period) {
  MPROS_EXPECTS(id < tasks_.size());
  MPROS_EXPECTS(period.micros() > 0);
  tasks_[id].period = period;
}

SimTime EventScheduler::period(TaskId id) const {
  MPROS_EXPECTS(id < tasks_.size());
  return tasks_[id].period;
}

std::size_t EventScheduler::run_until(SimTime deadline) {
  static telemetry::Counter& task_runs =
      telemetry::Registry::instance().counter("dc.scheduler_task_runs");
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    const Due due = queue_.top();
    queue_.pop();
    // On-demand runs fire "now": at the time they were requested for, or
    // the deadline if that is earlier than the task's natural slot.
    const SimTime at = due.at;
    tasks_[due.id].task(at);
    ++executed;
    task_runs.inc();
    if (due.reschedule) {
      queue_.push(Due{at + tasks_[due.id].period, next_sequence_++, due.id,
                      true});
    }
  }
  return executed;
}

const std::string& EventScheduler::task_name(TaskId id) const {
  MPROS_EXPECTS(id < tasks_.size());
  return tasks_[id].name;
}

}  // namespace mpros::dc
