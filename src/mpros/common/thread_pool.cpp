#include "mpros/common/thread_pool.hpp"

#include "mpros/common/assert.hpp"

namespace mpros {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  tasks_.close();
  // jthread joins on destruction.
}

void ThreadPool::submit(std::function<void()> task) {
  MPROS_EXPECTS(task != nullptr);
  {
    std::lock_guard lock(idle_mu_);
    ++in_flight_;
  }
  const bool accepted = tasks_.push(std::move(task));
  MPROS_ASSERT(accepted);  // submit() after destruction is a bug
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(idle_mu_);
  idle_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk the index range into ~thread_count() contiguous blocks instead of
  // one task per index: the fleet loop calls this with hundreds of DCs, and
  // per-index submission paid a queue push + wakeup per element. The first
  // n % chunks blocks take one extra index so uneven ranges stay covered.
  const std::size_t chunks = std::min(n, thread_count());
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t start = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t count = base + (c < extra ? 1 : 0);
    // Capturing fn by reference is safe: wait_idle() below outlives the
    // tasks.
    submit([&fn, start, count] {
      for (std::size_t i = start; i < start + count; ++i) fn(i);
    });
    start += count;
  }
  MPROS_ASSERT(start == n);
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (auto task = tasks_.pop()) {
    (*task)();
    {
      // Notify while holding the lock: wait_idle() (and so ~ThreadPool) can
      // then only proceed after this thread is done touching the condvar,
      // which would otherwise race with its destruction.
      std::lock_guard lock(idle_mu_);
      MPROS_ASSERT(in_flight_ > 0);
      --in_flight_;
      idle_cv_.notify_all();
    }
  }
}

}  // namespace mpros
