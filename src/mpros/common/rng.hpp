#pragma once
// Deterministic random sources.
//
// Every stochastic element of the simulator (sensor noise, fault onset
// jitter, network loss) draws from a seeded Rng so scenarios replay exactly.
// Substreams derive child seeds via splitmix64 so that adding a consumer
// doesn't perturb unrelated streams.

#include <cstdint>
#include <random>

namespace mpros {

/// splitmix64 step; good avalanche, used for seed derivation.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Derive an independent child stream; `salt` distinguishes siblings.
  [[nodiscard]] Rng fork(std::uint64_t salt) const {
    return Rng(splitmix64(seed_ ^ splitmix64(salt)));
  }

  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }
  std::uint64_t integer(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace mpros
