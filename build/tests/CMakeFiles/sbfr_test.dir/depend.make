# Empty dependencies file for sbfr_test.
# This may be replaced when dependencies are built.
