#pragma once
// Spatial knowledge fusion (paper §10.1).
//
// "Second, spatial reasoning using the object-oriented ship model could
// lead us to fuse information about spatially related components. Examples
// of spatial relations are proximity (for example, a device is vibrating
// because a component next to it is broken and vibrating wildly) and flow.
// Flows ... one component passing fouled fluids on to other components
// downstream."
//
// The SpatialReasoner post-processes fused conclusions against the OOSM's
// Proximity and FlowTo graphs:
//  - proximity discounting: a weak vibration diagnosis on machine A is
//    discounted when a proximate machine B carries a strong, well-supported
//    rotor-dynamics conclusion (A is probably just shaking in sympathy);
//  - flow suspicion: a confirmed fluid-borne fault raises advisory
//    suspicion on components downstream of the source.

#include <vector>

#include "mpros/pdme/pdme.hpp"

namespace mpros::pdme {

struct SpatialConfig {
  /// Neighbour belief above which it counts as the "wildly vibrating"
  /// culprit.
  double culprit_belief = 0.80;
  /// Own belief below which a diagnosis is weak enough to discount.
  double weak_belief = 0.50;
  /// Multiplier applied to a discounted item's priority.
  double discount_factor = 0.35;
  /// Advisory suspicion assigned to downstream components.
  double downstream_suspicion = 0.30;
};

/// A maintenance item after spatial post-processing.
struct SpatialItem {
  MaintenanceItem item;
  bool discounted = false;     ///< proximity discount applied
  ObjectId attributed_to;      ///< the proximate culprit, when discounted
};

/// Advisory flow-based suspicion (not a §7 report — a watch item).
struct FlowSuspicion {
  ObjectId source;               ///< machine with the confirmed fault
  domain::FailureMode source_mode{};
  ObjectId downstream;           ///< component receiving the fluid
  double suspicion = 0.0;
};

class SpatialReasoner {
 public:
  explicit SpatialReasoner(SpatialConfig cfg = {});

  /// Re-rank the PDME's prioritized list with proximity discounting.
  [[nodiscard]] std::vector<SpatialItem> refine(
      const PdmeExecutive& pdme) const;

  /// Fluid-borne faults (oil degradation, refrigerant leak, condenser
  /// fouling) propagated along FlowTo edges.
  [[nodiscard]] std::vector<FlowSuspicion> flow_suspicions(
      const PdmeExecutive& pdme) const;

 private:
  [[nodiscard]] static bool vibration_transmissible(domain::FailureMode mode);
  [[nodiscard]] static bool fluid_borne(domain::FailureMode mode);

  SpatialConfig cfg_;
};

}  // namespace mpros::pdme
