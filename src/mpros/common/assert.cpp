#include "mpros/common/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace mpros {

void contract_violation(const char* kind, const char* cond, const char* file,
                        int line) {
  std::fprintf(stderr, "mpros: %s failed: `%s` at %s:%d\n", kind, cond, file,
               line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace mpros
