file(REMOVE_RECURSE
  "CMakeFiles/ema_stiction.dir/ema_stiction.cpp.o"
  "CMakeFiles/ema_stiction.dir/ema_stiction.cpp.o.d"
  "ema_stiction"
  "ema_stiction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ema_stiction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
