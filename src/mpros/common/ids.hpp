#pragma once
// Strong identifier types for the MPROS object space.
//
// The paper's report protocol (§7.2) keys everything on "unique MPROS object
// IDs" (KnowledgeSourceID, SensedObjectID, MachineConditionID). Using one
// tagged integer type per role makes it impossible to pass a machine id where
// a knowledge-source id is expected.

#include <compare>
#include <cstdint>
#include <functional>

namespace mpros {

/// A type-tagged 64-bit identifier. `Tag` is an empty struct used purely to
/// distinguish id spaces at compile time.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t v) : value_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  static constexpr std::uint64_t kInvalid = 0;

 private:
  std::uint64_t value_ = kInvalid;
};

struct DcIdTag {};
struct KnowledgeSourceIdTag {};
struct ObjectIdTag {};
struct ConditionIdTag {};
struct ChannelIdTag {};
struct ReportIdTag {};
struct ShipIdTag {};

/// Identifies a Data Concentrator (the per-machinery-space computer).
using DcId = StrongId<DcIdTag>;
/// Identifies a knowledge source (DLI expert system, SBFR, WNN, fuzzy, ...).
using KnowledgeSourceId = StrongId<KnowledgeSourceIdTag>;
/// Identifies an entity in the Object-Oriented Ship Model.
using ObjectId = StrongId<ObjectIdTag>;
/// Identifies a machine condition (failure mode), e.g. "motor imbalance".
using ConditionId = StrongId<ConditionIdTag>;
/// Identifies one sensor channel on a Data Concentrator's MUX.
using ChannelId = StrongId<ChannelIdTag>;
/// Identifies one failure-prediction report instance.
using ReportId = StrongId<ReportIdTag>;
/// Identifies one hull in the shore-side fleet tier. Each ship's uplink to
/// the FleetServer is one reliable stream, keyed by this id.
using ShipId = StrongId<ShipIdTag>;

}  // namespace mpros

namespace std {
template <typename Tag>
struct hash<mpros::StrongId<Tag>> {
  size_t operator()(mpros::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
