file(REMOVE_RECURSE
  "CMakeFiles/pdme_test.dir/pdme_test.cpp.o"
  "CMakeFiles/pdme_test.dir/pdme_test.cpp.o.d"
  "pdme_test"
  "pdme_test.pdb"
  "pdme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
