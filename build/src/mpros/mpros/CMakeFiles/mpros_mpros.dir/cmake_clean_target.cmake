file(REMOVE_RECURSE
  "libmpros_mpros.a"
)
