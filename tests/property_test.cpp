// Property-based tests: randomized sweeps over the library's algebraic
// invariants (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "mpros/common/rng.hpp"
#include "mpros/common/units.hpp"
#include "mpros/db/database.hpp"
#include "mpros/dsp/fft.hpp"
#include "mpros/fusion/dempster_shafer.hpp"
#include "mpros/fusion/hazard.hpp"
#include "mpros/fusion/prognostic_fusion.hpp"
#include "mpros/net/network.hpp"
#include "mpros/net/report.hpp"
#include "mpros/oosm/ship_builder.hpp"
#include "mpros/pdme/browser.hpp"
#include "mpros/pdme/pdme.hpp"
#include "mpros/sbfr/interpreter.hpp"
#include "mpros/wavelet/dwt.hpp"

namespace mpros {
namespace {

// --- FFT invariants across sizes ---------------------------------------------

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, RoundTripAndParseval) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<dsp::Complex> x(n);
  for (auto& c : x) c = dsp::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));

  std::vector<dsp::Complex> y = x;
  const dsp::FftPlan plan(n);
  plan.forward(y);

  // Parseval: sum |x|^2 = (1/n) sum |X|^2.
  double ex = 0.0, ey = 0.0;
  for (const auto& c : x) ex += std::norm(c);
  for (const auto& c : y) ey += std::norm(c);
  EXPECT_NEAR(ex, ey / static_cast<double>(n), 1e-6 * ex + 1e-12);

  plan.inverse(y);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-9);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-9);
  }
}

TEST_P(FftSizeTest, LinearityHolds) {
  const std::size_t n = GetParam();
  Rng rng(n * 7);
  std::vector<dsp::Complex> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = dsp::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    b[i] = dsp::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    sum[i] = a[i] + 2.0 * b[i];
  }
  const dsp::FftPlan plan(n);
  plan.forward(a);
  plan.forward(b);
  plan.forward(sum);
  for (std::size_t i = 0; i < n; ++i) {
    const dsp::Complex expected = a[i] + 2.0 * b[i];
    EXPECT_NEAR(sum[i].real(), expected.real(), 1e-8);
    EXPECT_NEAR(sum[i].imag(), expected.imag(), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizeTest,
                         ::testing::Values(8, 32, 128, 512, 2048, 8192),
                         [](const auto& inst) {
                           return "n" + std::to_string(inst.param);
                         });

// --- DWT perfect reconstruction across lengths --------------------------------

class DwtLengthTest
    : public ::testing::TestWithParam<std::pair<std::size_t, int>> {};

TEST_P(DwtLengthTest, ReconstructionAndEnergy) {
  const auto [n, levels] = GetParam();
  Rng rng(n + static_cast<std::size_t>(levels));
  std::vector<double> x(n);
  for (double& v : x) v = rng.uniform(-2, 2);

  for (const auto family :
       {wavelet::Family::Haar, wavelet::Family::Db2, wavelet::Family::Db4}) {
    const auto d = wavelet::decompose(x, family, levels);
    const auto back = wavelet::reconstruct(d);
    ASSERT_EQ(back.size(), n);
    double max_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_err = std::max(max_err, std::fabs(back[i] - x[i]));
    }
    EXPECT_LT(max_err, 1e-9) << wavelet::to_string(family);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LengthsAndLevels, DwtLengthTest,
    ::testing::Values(std::pair<std::size_t, int>{64, 3},
                      std::pair<std::size_t, int>{96, 5},
                      std::pair<std::size_t, int>{256, 6},
                      std::pair<std::size_t, int>{1024, 4}),
    [](const auto& inst) {
      return "n" + std::to_string(inst.param.first) + "_l" +
             std::to_string(inst.param.second);
    });

// --- Dempster-Shafer algebra under random evidence -----------------------------

class DsAlgebraTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static fusion::MassFunction random_support(
      const fusion::FrameOfDiscernment& frame, Rng& rng) {
    const auto focus = static_cast<fusion::HypothesisSet>(
        rng.integer(1, frame.theta()));
    return fusion::MassFunction::simple_support(frame, focus,
                                                rng.uniform(0.0, 0.9));
  }
};

TEST_P(DsAlgebraTest, CommutativeAssociativeNormalized) {
  const fusion::FrameOfDiscernment frame({"a", "b", "c", "d"});
  Rng rng(GetParam());
  const auto m1 = random_support(frame, rng);
  const auto m2 = random_support(frame, rng);
  const auto m3 = random_support(frame, rng);

  // Commutativity.
  const auto ab = fusion::combine(m1, m2).fused;
  const auto ba = fusion::combine(m2, m1).fused;
  for (const auto& [set, mass] : ab.focal_elements()) {
    EXPECT_NEAR(ba.mass(set), mass, 1e-12);
  }

  // Associativity: (m1 ⊕ m2) ⊕ m3 == m1 ⊕ (m2 ⊕ m3).
  const auto left = fusion::combine(ab, m3).fused;
  const auto right = fusion::combine(m1, fusion::combine(m2, m3).fused).fused;
  for (const auto& [set, mass] : left.focal_elements()) {
    EXPECT_NEAR(right.mass(set), mass, 1e-9);
  }

  // Normalization and belief/plausibility bracketing.
  double total = 0.0;
  for (const auto& [set, mass] : left.focal_elements()) {
    EXPECT_GE(mass, 0.0);
    total += mass;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (std::size_t h = 0; h < frame.size(); ++h) {
    const auto s = frame.singleton(h);
    EXPECT_LE(left.belief(s), left.plausibility(s) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsAlgebraTest,
                         ::testing::Range<std::uint64_t>(1, 17));

// --- Prognostic fusion invariants under random curves --------------------------

class PrognosticPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static fusion::PrognosticVector random_curve(Rng& rng, std::size_t max_pts) {
    std::vector<fusion::PrognosticPoint> pts;
    double mo = 0.0;
    const std::size_t n = 1 + rng.integer(0, max_pts - 1);
    for (std::size_t i = 0; i < n; ++i) {
      mo += rng.uniform(0.2, 2.0);
      pts.push_back({SimTime::from_months(mo), rng.uniform(0.0, 1.0)});
    }
    return fusion::PrognosticVector(std::move(pts));
  }
};

TEST_P(PrognosticPropertyTest, FusionInvariants) {
  Rng rng(GetParam() * 31 + 5);
  const auto a = random_curve(rng, 6);
  const auto b = random_curve(rng, 6);

  const auto ab = fuse_conservative(a, b);
  const auto ba = fuse_conservative(b, a);

  for (double mo = 0.25; mo < 15.0; mo += 0.25) {
    const SimTime t = SimTime::from_months(mo);
    // Commutative.
    EXPECT_NEAR(ab.probability_at(t), ba.probability_at(t), 1e-9);
    // Monotone in time (a failure CDF cannot fall).
    EXPECT_GE(ab.probability_at(t + SimTime::from_months(0.25)) + 1e-12,
              ab.probability_at(t));
  }

  // Conservative at every reported constraint point.
  for (const auto* curve : {&a, &b}) {
    for (const auto& p : curve->points()) {
      EXPECT_GE(ab.probability_at(p.horizon) + 1e-9, p.probability);
    }
  }

  // Idempotent under refusion.
  const auto again = fuse_conservative(ab, a);
  for (double mo = 0.25; mo < 15.0; mo += 0.5) {
    const SimTime t = SimTime::from_months(mo);
    EXPECT_NEAR(again.probability_at(t), ab.probability_at(t), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrognosticPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 17));

// --- Report codec under random field content -----------------------------------

class CodecFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzzTest, RandomReportsRoundTrip) {
  Rng rng(GetParam() * 97);
  for (int trial = 0; trial < 25; ++trial) {
    net::FailureReport r;
    r.dc = DcId(rng.integer(0, 1u << 20));
    r.knowledge_source = KnowledgeSourceId(rng.integer(0, 255));
    r.sensed_object = ObjectId(rng.integer(0, 1u << 30));
    r.machine_condition = ConditionId(rng.integer(0, 64));
    r.severity = rng.uniform(0, 1);
    r.belief = rng.uniform(0, 1);
    r.timestamp = SimTime(static_cast<std::int64_t>(
        rng.integer(0, 1ull << 50)));
    const auto text_len = rng.integer(0, 300);
    for (std::uint64_t i = 0; i < text_len; ++i) {
      r.explanation.push_back(
          static_cast<char>(rng.integer(1, 255)));  // arbitrary bytes
    }
    const auto prog_count = rng.integer(0, 8);
    for (std::uint64_t i = 0; i < prog_count; ++i) {
      r.prognostics.push_back(
          {rng.uniform(0, 1), rng.uniform(0, 1e9)});
    }
    EXPECT_EQ(net::deserialize_report(net::serialize(r)), r);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- SBFR: random machines never corrupt the interpreter ------------------------

class SbfrFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// A random but always-valid expression over 2 channels / 2 locals /
  /// `machines` status registers, depth-bounded.
  static sbfr::Expr random_expr(Rng& rng, int depth, std::uint8_t machines) {
    if (depth <= 0) {
      switch (rng.integer(0, 4)) {
        case 0: return sbfr::Expr::constant(rng.uniform(-5, 5));
        case 1: return sbfr::Expr::input(static_cast<std::uint8_t>(
                    rng.integer(0, 1)));
        case 2: return sbfr::Expr::delta(static_cast<std::uint8_t>(
                    rng.integer(0, 1)));
        case 3: return sbfr::Expr::local(static_cast<std::uint8_t>(
                    rng.integer(0, 1)));
        default: return sbfr::Expr::dt();
      }
    }
    const sbfr::Expr lhs = random_expr(rng, depth - 1, machines);
    const sbfr::Expr rhs = random_expr(rng, depth - 1, machines);
    switch (rng.integer(0, 6)) {
      case 0: return lhs + rhs;
      case 1: return lhs - rhs;
      case 2: return lhs * rhs;
      case 3: return lhs > rhs;
      case 4: return lhs <= rhs;
      case 5: return lhs && rhs;
      default: return lhs || rhs;
    }
  }

  static sbfr::MachineDef random_machine(Rng& rng, std::uint8_t machines,
                                         std::uint8_t self) {
    const auto states = static_cast<std::uint8_t>(rng.integer(1, 4));
    sbfr::MachineDef def("fuzz", /*num_locals=*/2, 0);
    for (std::uint8_t s = 0; s < states; ++s) {
      def.add_state("s" + std::to_string(s));
    }
    const auto transitions = rng.integer(1, 8);
    for (std::uint64_t t = 0; t < transitions; ++t) {
      const auto from = static_cast<std::uint8_t>(rng.integer(0, states - 1));
      const auto to = static_cast<std::uint8_t>(rng.integer(0, states - 1));
      sbfr::Action action;
      if (rng.bernoulli(0.7)) {
        action.set_local(static_cast<std::uint8_t>(rng.integer(0, 1)),
                         random_expr(rng, 1, machines));
      }
      if (rng.bernoulli(0.3)) {
        action.set_status(self, random_expr(rng, 1, machines));
      }
      def.add_transition(from, to, random_expr(rng, 2, machines), action);
    }
    return def;
  }
};

TEST_P(SbfrFuzzTest, RandomMachinesRunAndSerializeStably) {
  Rng rng(GetParam() * 1337);
  constexpr std::uint8_t kMachines = 4;
  sbfr::SbfrSystem sys(2);
  std::vector<std::vector<std::uint8_t>> images;
  for (std::uint8_t m = 0; m < kMachines; ++m) {
    const auto def = random_machine(rng, kMachines, m);
    ASSERT_TRUE(sbfr::validate(def).empty());
    images.push_back(def.serialize());
    sys.add_machine(def);
  }

  for (int cycle = 0; cycle < 2000; ++cycle) {
    const double inputs[2] = {rng.uniform(-10, 10), rng.uniform(-10, 10)};
    sys.step(inputs);
  }
  for (std::uint8_t m = 0; m < kMachines; ++m) {
    EXPECT_LT(sys.state(m), 4);  // state index stays in range
    // Serialized image is stable through a round trip.
    EXPECT_EQ(sbfr::MachineDef::deserialize(images[m]).serialize(),
              images[m]);
  }
  (void)sys.drain_events();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SbfrFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- DB vs reference model -------------------------------------------------------

class DbModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DbModelTest, RandomOpsMatchReferenceMap) {
  Rng rng(GetParam() * 271);
  db::Table table(db::TableSchema{
      "t",
      {db::ColumnDef{"id", db::ValueType::Integer, false},
       db::ColumnDef{"v", db::ValueType::Real, false}}});
  table.create_index("v");
  std::map<std::int64_t, double> reference;

  for (int op = 0; op < 800; ++op) {
    const auto choice = rng.integer(0, 9);
    if (choice < 5) {  // insert
      const double v = std::floor(rng.uniform(0, 20));
      const auto key = table.insert_auto({db::Value(v)});
      reference[key] = v;
    } else if (choice < 7 && !reference.empty()) {  // erase random existing
      auto it = reference.begin();
      std::advance(it, static_cast<long>(
                           rng.integer(0, reference.size() - 1)));
      EXPECT_TRUE(table.erase(it->first));
      reference.erase(it);
    } else if (!reference.empty()) {  // update random existing
      auto it = reference.begin();
      std::advance(it, static_cast<long>(
                           rng.integer(0, reference.size() - 1)));
      const double v = std::floor(rng.uniform(0, 20));
      EXPECT_TRUE(table.update(it->first, "v", db::Value(v)));
      it->second = v;
    }
  }

  // Row count and contents agree.
  ASSERT_EQ(table.row_count(), reference.size());
  for (const auto& [key, v] : reference) {
    const db::Row* row = table.find(key);
    ASSERT_NE(row, nullptr);
    EXPECT_DOUBLE_EQ((*row)[1].numeric(), v);
  }
  // Index lookups agree with a reference scan for every distinct value.
  for (double v = 0.0; v < 20.0; v += 1.0) {
    std::size_t expected = 0;
    for (const auto& [key, rv] : reference) {
      if (rv == v) ++expected;
    }
    EXPECT_EQ(table.lookup("v", db::Value(v)).size(), expected) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbModelTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- Network conservation law ----------------------------------------------------

struct NetCase {
  double drop, dup;
  std::uint64_t seed;
};

class NetworkConservationTest : public ::testing::TestWithParam<NetCase> {};

TEST_P(NetworkConservationTest, DatagramsAreConserved) {
  const NetCase c = GetParam();
  net::NetworkConfig cfg;
  cfg.drop_probability = c.drop;
  cfg.duplicate_probability = c.dup;
  cfg.jitter = SimTime::from_millis(200.0);
  cfg.seed = c.seed;
  net::SimNetwork network(cfg);
  std::size_t received = 0;
  network.register_endpoint("sink", [&](const net::Message&) { ++received; });

  Rng rng(c.seed);
  constexpr std::size_t kSent = 500;
  for (std::size_t i = 0; i < kSent; ++i) {
    // 10% of traffic goes to an unregistered endpoint.
    const std::string to = rng.bernoulli(0.1) ? "ghost" : "sink";
    network.send("src", to, {static_cast<std::uint8_t>(i)},
                 SimTime::from_millis(static_cast<double>(i)));
  }
  network.flush();

  const net::NetworkStats s = network.stats();
  EXPECT_EQ(s.sent, kSent);
  // Everything sent is accounted for exactly once.
  EXPECT_EQ(s.delivered + s.dead_lettered,
            s.sent - s.dropped + s.duplicated);
  EXPECT_EQ(received, s.delivered);
  EXPECT_EQ(network.in_flight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, NetworkConservationTest,
    ::testing::Values(NetCase{0.0, 0.0, 1}, NetCase{0.3, 0.0, 2},
                      NetCase{0.0, 0.4, 3}, NetCase{0.25, 0.25, 4},
                      NetCase{0.6, 0.1, 5}),
    [](const auto& inst) {
      return "case" + std::to_string(inst.param.seed);
    });

// --- Weibull fit recovery across parameter space ----------------------------------

struct WeibullCase {
  double shape, scale;
};

class WeibullRecoveryTest : public ::testing::TestWithParam<WeibullCase> {};

TEST_P(WeibullRecoveryTest, MleRecoversParameters) {
  const WeibullCase c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.shape * 100 + c.scale));
  std::vector<fusion::LifeRecord> records;
  for (int i = 0; i < 600; ++i) {
    const double u = rng.uniform(1e-6, 1.0 - 1e-6);
    records.push_back(
        {SimTime::from_days(c.scale *
                            std::pow(-std::log(1.0 - u), 1.0 / c.shape)),
         true});
  }
  const auto fit = fusion::WeibullModel::fit(records);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->shape() / c.shape, 1.0, 0.12);
  EXPECT_NEAR(fit->scale_days() / c.scale, 1.0, 0.08);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndScales, WeibullRecoveryTest,
    ::testing::Values(WeibullCase{0.7, 60.0}, WeibullCase{1.0, 150.0},
                      WeibullCase{2.0, 90.0}, WeibullCase{3.5, 400.0}),
    [](const auto& inst) {
      return "k" + std::to_string(static_cast<int>(inst.param.shape * 10)) +
             "_s" + std::to_string(static_cast<int>(inst.param.scale));
    });

// --- Sharded PDME equivalence (E18) -----------------------------------------
//
// The determinism contract of the sharded executive: for any report stream,
// an N-shard PDME drained through synchronize() leaves OOSM, fused state and
// browser output byte-identical to the single-threaded inline executive.
// Per-machine order is preserved (a machine always hashes to the same shard,
// the shard queue is FIFO), deferred OOSM posts replay in global arrival
// order, and per-shard dedup sees every signature for its machines.

class PdmeShardEquivalenceTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  struct Rig {
    oosm::ObjectModel model;
    oosm::ShipModel ship;
    std::unique_ptr<pdme::PdmeExecutive> exec;

    explicit Rig(std::size_t shard_count)
        : ship(oosm::build_ship(model, "Prop", /*decks=*/2,
                                /*plants_per_deck=*/2)) {
      pdme::PdmeConfig cfg;
      cfg.shard_count = shard_count;
      exec = std::make_unique<pdme::PdmeExecutive>(model, cfg);
    }

    [[nodiscard]] std::vector<ObjectId> machines() const {
      std::vector<ObjectId> out;
      for (const auto& plant : ship.plants) {
        out.insert(out.end(), {plant.chiller, plant.motor, plant.gearbox,
                               plant.compressor});
      }
      return out;
    }
  };

  /// A seeded multi-plant stream: reinforcing/conflicting reports over all
  /// machines, exact-duplicate retransmissions, sensor-fault flags.
  static std::vector<net::FailureReport> make_stream(
      const std::vector<ObjectId>& machines) {
    constexpr domain::FailureMode kModes[] = {
        domain::FailureMode::MotorImbalance,
        domain::FailureMode::ShaftMisalignment,
        domain::FailureMode::BearingHousingLooseness,
        domain::FailureMode::RotorBarDefect,
        domain::FailureMode::StatorWindingFault,
        domain::FailureMode::MotorBearingWear,
        domain::FailureMode::CompressorBearingWear,
        domain::FailureMode::OilDegradation,
        domain::FailureMode::GearMeshWear,
        domain::FailureMode::PumpCavitation,
        domain::FailureMode::RefrigerantLeak,
        domain::FailureMode::CondenserFouling,
    };
    Rng rng(0xE18);
    std::vector<net::FailureReport> stream;
    for (int i = 0; i < 400; ++i) {
      if (!stream.empty() && rng.bernoulli(0.15)) {
        // Retransmission: both executives must drop it by signature.
        stream.push_back(stream[rng.integer(0, stream.size() - 1)]);
        continue;
      }
      net::FailureReport r;
      r.dc = DcId(1 + rng.integer(0, 3));
      r.knowledge_source = KnowledgeSourceId(rng.integer(1, 4));
      r.sensed_object = machines[rng.integer(0, machines.size() - 1)];
      if (rng.bernoulli(0.08)) {
        r.machine_condition = domain::sensor_fault_condition(
            static_cast<domain::SensorFaultKind>(rng.integer(0, 2)));
        r.severity = rng.bernoulli(0.7) ? rng.uniform(0.3, 1.0) : 0.0;
      } else {
        r.machine_condition = domain::condition_id(kModes[rng.integer(0, 11)]);
        r.severity = rng.uniform(0.05, 1.0);
      }
      r.belief = rng.uniform(0.05, 0.95);
      r.timestamp = SimTime::from_seconds(10.0 * (i + 1));
      r.explanation = "prop stream #" + std::to_string(i);
      const auto prog_count = rng.integer(0, 3);
      for (std::uint64_t p = 0; p < prog_count; ++p) {
        r.prognostics.push_back(
            {rng.uniform(0.0, 1.0), rng.uniform(86400.0, 100.0 * 86400.0)});
      }
      stream.push_back(r);
    }
    return stream;
  }
};

TEST_P(PdmeShardEquivalenceTest, FusedStateMatchesInlineByteForByte) {
  Rig baseline(0);  // historical single-threaded executive
  Rig sharded(GetParam());
  ASSERT_EQ(sharded.exec->shard_count(), GetParam());

  const std::vector<ObjectId> machines = baseline.machines();
  const auto stream = make_stream(machines);
  for (const auto& r : stream) baseline.exec->accept(r);
  baseline.exec->synchronize();  // no-op inline, but part of the contract
  for (const auto& r : stream) sharded.exec->accept(r);
  sharded.exec->synchronize();

  // Accounting identical; Block policy means nothing was shed.
  const auto a = baseline.exec->stats();
  const auto b = sharded.exec->stats();
  EXPECT_EQ(a.reports_accepted, b.reports_accepted);
  EXPECT_EQ(a.duplicates_dropped, b.duplicates_dropped);
  EXPECT_EQ(a.malformed_dropped, b.malformed_dropped);
  EXPECT_EQ(a.fusion_updates, b.fusion_updates);
  EXPECT_EQ(a.sensor_fault_reports, b.sensor_fault_reports);
  EXPECT_EQ(b.queue_full, 0u);
  EXPECT_GT(b.reports_accepted, 0u);
  EXPECT_GT(b.duplicates_dropped, 0u);  // the stream really had retransmits

  // OOSM: identical population in identical creation order (deferred posts
  // replay in global arrival order).
  const auto objs_a = baseline.model.all_objects();
  const auto objs_b = sharded.model.all_objects();
  ASSERT_EQ(objs_a.size(), objs_b.size());
  for (std::size_t i = 0; i < objs_a.size(); ++i) {
    ASSERT_EQ(objs_a[i].value(), objs_b[i].value());
    EXPECT_EQ(baseline.model.name(objs_a[i]), sharded.model.name(objs_b[i]));
  }

  // Quarantine ledger agrees.
  const auto faults_a = baseline.exec->sensor_faults(/*active_only=*/false);
  const auto faults_b = sharded.exec->sensor_faults(/*active_only=*/false);
  ASSERT_EQ(faults_a.size(), faults_b.size());
  for (std::size_t i = 0; i < faults_a.size(); ++i) {
    EXPECT_EQ(faults_a[i].dc.value(), faults_b[i].dc.value());
    EXPECT_EQ(faults_a[i].kind, faults_b[i].kind);
    EXPECT_DOUBLE_EQ(faults_a[i].severity, faults_b[i].severity);
  }

  // Browser pages byte-identical: fleet summary and every machine screen.
  EXPECT_EQ(pdme::render_summary(*baseline.exec, baseline.model, 50),
            pdme::render_summary(*sharded.exec, sharded.model, 50));
  for (const ObjectId m : machines) {
    EXPECT_EQ(pdme::render_machine(*baseline.exec, baseline.model, m),
              pdme::render_machine(*sharded.exec, sharded.model, m));
  }
  EXPECT_EQ(pdme::export_icas_csv(*baseline.exec, baseline.model),
            pdme::export_icas_csv(*sharded.exec, sharded.model));
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, PdmeShardEquivalenceTest,
                         ::testing::Values<std::size_t>(1, 2, 4, 8),
                         [](const auto& inst) {
                           return "shards" + std::to_string(inst.param);
                         });

// --- E21: batched submit() is byte-identical to singleton submit() -----------
//
// The committed guarantee of the batched ingest redesign: however the same
// report stream is partitioned into submit() spans — including the whole
// window at once, and with fusion sharded — the OOSM population, browser
// pages, ICAS export, and report-level counters match the one-report-at-a-
// time inline executive exactly.

class PdmeBatchEquivalenceTest : public PdmeShardEquivalenceTest {
 protected:
  static std::vector<net::ReportEnvelope> to_envelopes(
      const std::vector<net::FailureReport>& stream) {
    std::vector<net::ReportEnvelope> envs;
    envs.reserve(stream.size());
    for (const auto& r : stream) {
      net::ReportEnvelope env;
      env.dc = r.dc;
      env.sequence = 0;  // unsequenced: partitioning is the variable here
      env.report = r;
      envs.push_back(std::move(env));
    }
    return envs;
  }

  /// Feed `envs` as submit() spans: fixed size `batch`, the whole window
  /// when `batch` is 0, or randomized span lengths when `rng` is given.
  static void submit_partitioned(pdme::PdmeExecutive& exec,
                                 const std::vector<net::ReportEnvelope>& envs,
                                 std::size_t batch, Rng* rng = nullptr) {
    std::size_t i = 0;
    while (i < envs.size()) {
      std::size_t n = batch == 0 ? envs.size() - i
                      : rng == nullptr
                          ? batch
                          : 1 + rng->integer(0, 2 * batch - 1);
      n = std::min(n, envs.size() - i);
      exec.submit({envs.data() + i, n});
      i += n;
    }
    exec.synchronize();
  }

  /// Deep equivalence: every object (id, name, kind, every property value,
  /// every relation edge), browser pages, ICAS export, counters.
  static void expect_equivalent(const Rig& a, const Rig& b,
                                const std::vector<ObjectId>& machines) {
    const auto sa = a.exec->snapshot();
    const auto sb = b.exec->snapshot();
    EXPECT_EQ(sa.reports_accepted, sb.reports_accepted);
    EXPECT_EQ(sa.duplicates_dropped, sb.duplicates_dropped);
    EXPECT_EQ(sa.malformed_dropped, sb.malformed_dropped);
    EXPECT_EQ(sa.fusion_updates, sb.fusion_updates);
    EXPECT_EQ(sa.sensor_fault_reports, sb.sensor_fault_reports);
    EXPECT_EQ(sb.queue_full, 0u);

    const auto objs_a = a.model.all_objects();
    const auto objs_b = b.model.all_objects();
    ASSERT_EQ(objs_a.size(), objs_b.size());
    for (std::size_t i = 0; i < objs_a.size(); ++i) {
      const ObjectId id = objs_a[i];
      ASSERT_EQ(id.value(), objs_b[i].value());
      EXPECT_EQ(a.model.name(id), b.model.name(id));
      EXPECT_EQ(a.model.kind(id), b.model.kind(id));
      const auto& pa = a.model.properties(id);
      const auto& pb = b.model.properties(id);
      ASSERT_EQ(pa.size(), pb.size());
      for (auto ia = pa.begin(), ib = pb.begin(); ia != pa.end(); ++ia, ++ib) {
        EXPECT_EQ(ia->first, ib->first);
        EXPECT_TRUE(ia->second == ib->second)
            << "property " << ia->first << " differs on object " << id.value();
      }
      for (std::size_t rel = 0; rel < oosm::kRelationCount; ++rel) {
        const auto ra = a.model.related(id, static_cast<oosm::Relation>(rel));
        const auto rb = b.model.related(id, static_cast<oosm::Relation>(rel));
        ASSERT_EQ(ra.size(), rb.size());
        for (std::size_t e = 0; e < ra.size(); ++e) {
          EXPECT_EQ(ra[e].value(), rb[e].value());
        }
      }
    }

    EXPECT_EQ(pdme::render_summary(*a.exec, a.model, 50),
              pdme::render_summary(*b.exec, b.model, 50));
    for (const ObjectId m : machines) {
      EXPECT_EQ(pdme::render_machine(*a.exec, a.model, m),
                pdme::render_machine(*b.exec, b.model, m));
    }
    EXPECT_EQ(pdme::export_icas_csv(*a.exec, a.model),
              pdme::export_icas_csv(*b.exec, b.model));
  }
};

TEST_P(PdmeBatchEquivalenceTest, PartitionedSubmitMatchesSingleton) {
  Rig singleton(0);
  Rig batched(0);
  const std::vector<ObjectId> machines = singleton.machines();
  const auto envs = to_envelopes(make_stream(machines));

  submit_partitioned(*singleton.exec, envs, /*batch=*/1);
  submit_partitioned(*batched.exec, envs, GetParam());
  expect_equivalent(singleton, batched, machines);
}

TEST_F(PdmeBatchEquivalenceTest, RandomizedPartitionsMatchSingleton) {
  Rig singleton(0);
  const std::vector<ObjectId> machines = singleton.machines();
  const auto envs = to_envelopes(make_stream(machines));
  submit_partitioned(*singleton.exec, envs, /*batch=*/1);

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rig batched(0);
    Rng rng(0xBA7C4 + seed);
    submit_partitioned(*batched.exec, envs, /*batch=*/16, &rng);
    expect_equivalent(singleton, batched, machines);
  }
}

TEST_F(PdmeBatchEquivalenceTest, BatchedShardedMatchesSingletonInline) {
  Rig singleton(0);
  Rig sharded(2);
  const std::vector<ObjectId> machines = singleton.machines();
  const auto envs = to_envelopes(make_stream(machines));

  submit_partitioned(*singleton.exec, envs, /*batch=*/1);
  submit_partitioned(*sharded.exec, envs, /*batch=*/64);
  expect_equivalent(singleton, sharded, machines);
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, PdmeBatchEquivalenceTest,
                         ::testing::Values<std::size_t>(7, 64, 0),
                         [](const auto& inst) {
                           return inst.param == 0
                                      ? std::string("fullwindow")
                                      : "batch" + std::to_string(inst.param);
                         });

}  // namespace
}  // namespace mpros
