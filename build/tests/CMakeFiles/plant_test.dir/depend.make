# Empty dependencies file for plant_test.
# This may be replaced when dependencies are built.
