#pragma once
// Per-thread DSP scratch arena.
//
// Every spectral routine needs transient buffers (a windowed copy of the
// input, an FFT workspace, a half spectrum). Allocating them per call put a
// malloc/free pair — and the associated lock traffic under the fleet thread
// pool — on the hottest path in the system. DspScratch keeps a small set of
// lazily grown, thread-local buffers instead: the first acquisition at a
// given size allocates, every subsequent one reuses capacity, so the
// steady-state vibration test performs zero heap allocation in the DSP
// layer.
//
// Buffers are handed out by *lane*: two buffers that must stay live at the
// same time take distinct lanes. DSP routines never call each other while
// holding a lane (they communicate through caller-owned outputs), so the
// fixed lane assignment inside each routine is safe. Callers outside the
// DSP layer should not hold a lane across a dsp:: call.

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace mpros::dsp {

class DspScratch {
 public:
  static constexpr std::size_t kLanes = 3;

  /// The calling thread's arena (thread_local; no synchronization needed).
  static DspScratch& local();

  /// First `n` entries of the lane's complex buffer, grown if needed.
  /// Contents are unspecified; the caller overwrites what it uses.
  std::span<std::complex<double>> complex_lane(std::size_t lane,
                                               std::size_t n);

  /// First `n` entries of the lane's real buffer, grown if needed.
  std::span<double> real_lane(std::size_t lane, std::size_t n);

  /// Bytes currently reserved across all lanes (diagnostics/tests).
  [[nodiscard]] std::size_t footprint_bytes() const;

 private:
  std::vector<std::complex<double>> complex_[kLanes];
  std::vector<double> real_[kLanes];
};

}  // namespace mpros::dsp
