// Telemetry subsystem tests: metrics registry, pipeline tracing, flight
// recorder, and the record -> replay determinism contract.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "mpros/common/log.hpp"
#include "mpros/mpros/replay.hpp"
#include "mpros/mpros/ship_system.hpp"
#include "mpros/pdme/browser.hpp"
#include "mpros/telemetry/metrics.hpp"
#include "mpros/telemetry/recorder.hpp"
#include "mpros/telemetry/trace.hpp"

namespace mpros {
namespace {

using telemetry::FlightRecorder;
using telemetry::Registry;

TEST(MetricsTest, CounterExactUnderConcurrency) {
  telemetry::set_enabled(true);
  telemetry::Counter& c =
      Registry::instance().counter("test.concurrent_counter");
  c.reset();

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(MetricsTest, DisabledObservationsAreDropped) {
  telemetry::Counter& c = Registry::instance().counter("test.kill_switch");
  c.reset();
  telemetry::set_enabled(false);
  c.inc(100);
  telemetry::set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  c.inc(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(MetricsTest, HistogramQuantilesWithinBucketBounds) {
  telemetry::set_enabled(true);
  telemetry::Histogram h({10.0, 100.0, 1000.0});
  // 90 observations in [0,10], 10 in (100,1000]: p50 must land in the
  // first bucket, p95+ in the third.
  for (int i = 0; i < 90; ++i) h.observe(5.0);
  for (int i = 0; i < 10; ++i) h.observe(500.0);

  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), (90 * 5.0 + 10 * 500.0) / 100.0);
  EXPECT_GE(h.quantile(0.5), 0.0);
  EXPECT_LE(h.quantile(0.5), 10.0);
  EXPECT_GT(h.quantile(0.95), 100.0);
  EXPECT_LE(h.quantile(0.95), 1000.0);
  EXPECT_FALSE(h.max_exceeded());

  h.observe(5000.0);  // overflow bucket
  EXPECT_TRUE(h.max_exceeded());
  EXPECT_LE(h.quantile(1.0), 1000.0);  // capped at the last bound
}

TEST(MetricsTest, SnapshotAndRenderersCoverAllKinds) {
  telemetry::set_enabled(true);
  Registry& reg = Registry::instance();
  reg.counter("test.render_counter").inc(3);
  reg.gauge("test.render_gauge").set(2.5);
  reg.histogram("test.render_hist").observe(42.0);

  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& s : reg.snapshot()) {
    if (s.name == "test.render_counter") {
      saw_counter = true;
      EXPECT_EQ(s.kind, telemetry::MetricSnapshot::Kind::Counter);
      EXPECT_DOUBLE_EQ(s.value, 3.0);
    } else if (s.name == "test.render_gauge") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(s.value, 2.5);
    } else if (s.name == "test.render_hist") {
      saw_hist = true;
      EXPECT_EQ(s.count, 1u);
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);

  const std::string text = reg.render_text();
  EXPECT_NE(text.find("test.render_counter"), std::string::npos);
  const std::string json = reg.render_json();
  EXPECT_NE(json.find("\"test.render_gauge\""), std::string::npos);
}

TEST(MetricsTest, WarnAndErrorLogsFeedComponentCounters) {
  telemetry::set_enabled(true);
  telemetry::Counter& warns =
      Registry::instance().counter("logtest.log_warnings");
  telemetry::Counter& errors =
      Registry::instance().counter("logtest.log_errors");
  warns.reset();
  errors.reset();

  // Raise the sink threshold so nothing prints: the counters must still
  // move (suppressed output is exactly when you need the evidence).
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::Off);
  MPROS_LOG_WARN("logtest", "simulated warning %d", 1);
  MPROS_LOG_ERROR("logtest", "simulated error %d", 2);
  MPROS_LOG_INFO("logtest", "info is not counted");
  set_log_level(old_level);

  EXPECT_EQ(warns.value(), 1u);
  EXPECT_EQ(errors.value(), 1u);
}

TEST(TraceTest, SpansGroupByTraceAndRingStaysBounded) {
  telemetry::set_enabled(true);
  telemetry::Tracer& tracer = telemetry::Tracer::instance();
  tracer.clear();
  tracer.set_capacity(8);

  const telemetry::TraceId a = telemetry::next_trace_id();
  const telemetry::TraceId b = telemetry::next_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);

  {
    telemetry::StageTimer t("test.stage_one", a, 1000);
    t.set_sim_end(2000);
  }
  { telemetry::StageTimer t("test.stage_two", a, 2000); }
  { telemetry::StageTimer t("test.other", b, 3000); }

  const auto spans = tracer.spans_for(a);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].stage, "test.stage_one");
  EXPECT_EQ(spans[0].sim_start_us, 1000);
  EXPECT_EQ(spans[0].sim_end_us, 2000);
  EXPECT_GE(spans[0].wall_ns, 0);
  EXPECT_EQ(spans[1].stage, "test.stage_two");

  for (int i = 0; i < 100; ++i) {
    telemetry::StageTimer t("test.flood", b, i);
  }
  EXPECT_LE(tracer.recent().size(), 8u);
  EXPECT_GT(tracer.evicted(), 0u);
  tracer.clear();
  tracer.set_capacity(4096);
}

TEST(RecorderTest, EncodeDecodeRoundTrip) {
  FlightRecorder rec(16);
  rec.set_header({telemetry::kRecorderVersion, false, 6, 0xABCD});
  rec.record_message(1000, "dc-1", "pdme", {9, 8, 7});
  rec.record_event(2000, "dc-2", "SBFR latch");

  const auto decoded = FlightRecorder::decode(rec.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header, rec.header());
  ASSERT_EQ(decoded->frames.size(), 2u);
  EXPECT_EQ(decoded->frames[0].kind, telemetry::FrameKind::NetMessage);
  EXPECT_EQ(decoded->frames[0].time_us, 1000);
  EXPECT_EQ(decoded->frames[0].from, "dc-1");
  EXPECT_EQ(decoded->frames[0].to, "pdme");
  EXPECT_EQ(decoded->frames[0].payload, (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_EQ(decoded->frames[1].kind, telemetry::FrameKind::Event);
  EXPECT_EQ(std::string(decoded->frames[1].payload.begin(),
                        decoded->frames[1].payload.end()),
            "SBFR latch");
}

TEST(RecorderTest, RingEvictsOldestFrames) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record_message(i, "dc", "pdme",
                       {static_cast<std::uint8_t>(i)});
  }
  const auto frames = rec.frames();
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames.front().time_us, 6);  // 0..5 evicted
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.evicted(), 6u);
}

TEST(RecorderTest, DumpAndLoadFile) {
  FlightRecorder rec(8);
  rec.set_header({telemetry::kRecorderVersion, true, 2, 42});
  rec.record_message(500, "dc-1", "pdme", {1, 2});

  const std::string path = ::testing::TempDir() + "telemetry_test_dump.mfr";
  ASSERT_TRUE(rec.dump(path));
  const auto loaded = FlightRecorder::load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header.seed, 42u);
  ASSERT_EQ(loaded->frames.size(), 1u);
  EXPECT_EQ(loaded->frames[0].payload, (std::vector<std::uint8_t>{1, 2}));

  EXPECT_FALSE(FlightRecorder::load(path).has_value());  // gone now
}

TEST(ReplayTest, RecordedRunReplaysToIdenticalPrioritizedList) {
  telemetry::set_enabled(true);

  ShipSystemConfig cfg;
  cfg.plant_count = 2;
  cfg.dc_template.vibration_period = SimTime::from_seconds(600);
  cfg.dc_template.process_period = SimTime::from_seconds(60);
  cfg.enable_flight_recorder = true;
  ShipSystem ship(cfg);
  ship.chiller(0).faults().schedule(
      {domain::FailureMode::MotorImbalance, SimTime(0), SimTime(0), 0.9,
       plant::GrowthProfile::Step});
  ship.run_until(SimTime::from_hours(1.0));

  const std::string live = pdme::render_summary(ship.pdme(), ship.model());
  EXPECT_GT(ship.pdme().stats().reports_accepted, 0u);

  ASSERT_NE(ship.flight_recorder(), nullptr);
  const auto dump = FlightRecorder::decode(ship.flight_recorder()->encode());
  ASSERT_TRUE(dump.has_value());

  const auto replayed = replay_recording(*dump);
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(replayed->summary, live);  // byte-identical
  EXPECT_EQ(replayed->reports_fused, ship.pdme().stats().reports_accepted);
  EXPECT_GT(replayed->messages_replayed, 0u);
  EXPECT_EQ(replayed->malformed, 0u);
}

TEST(ReplayTest, UnsupportedVersionRejected) {
  FlightRecorder rec(4);
  rec.record_message(0, "dc-1", "pdme", {1});
  auto bytes = rec.encode();
  bytes[3] = 99;  // version byte follows the 3-byte magic
  // decode() refuses unknown versions, so replay never sees them.
  EXPECT_FALSE(FlightRecorder::decode(bytes).has_value());
}

TEST(ReplayTest, InstrumentedRunPopulatesPipelineMetrics) {
  telemetry::set_enabled(true);
  Registry::instance().reset_values();

  ShipSystemConfig cfg;
  cfg.plant_count = 1;
  cfg.dc_template.vibration_period = SimTime::from_seconds(600);
  cfg.dc_template.process_period = SimTime::from_seconds(60);
  ShipSystem ship(cfg);
  ship.run_until(SimTime::from_hours(0.5));

  Registry& reg = Registry::instance();
  EXPECT_GT(reg.counter("dc.vibration_tests").value(), 0u);
  EXPECT_GT(reg.counter("dc.process_scans").value(), 0u);
  EXPECT_GT(reg.counter("dc.scheduler_task_runs").value(), 0u);
  EXPECT_GT(reg.counter("net.delivered").value(), 0u);
  EXPECT_GT(reg.histogram("net.transit_latency_us").count(), 0u);
}

}  // namespace
}  // namespace mpros
