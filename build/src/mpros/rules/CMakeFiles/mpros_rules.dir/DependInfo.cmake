
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpros/rules/believability.cpp" "src/mpros/rules/CMakeFiles/mpros_rules.dir/believability.cpp.o" "gcc" "src/mpros/rules/CMakeFiles/mpros_rules.dir/believability.cpp.o.d"
  "/root/repo/src/mpros/rules/dli_rules.cpp" "src/mpros/rules/CMakeFiles/mpros_rules.dir/dli_rules.cpp.o" "gcc" "src/mpros/rules/CMakeFiles/mpros_rules.dir/dli_rules.cpp.o.d"
  "/root/repo/src/mpros/rules/engine.cpp" "src/mpros/rules/CMakeFiles/mpros_rules.dir/engine.cpp.o" "gcc" "src/mpros/rules/CMakeFiles/mpros_rules.dir/engine.cpp.o.d"
  "/root/repo/src/mpros/rules/features.cpp" "src/mpros/rules/CMakeFiles/mpros_rules.dir/features.cpp.o" "gcc" "src/mpros/rules/CMakeFiles/mpros_rules.dir/features.cpp.o.d"
  "/root/repo/src/mpros/rules/severity.cpp" "src/mpros/rules/CMakeFiles/mpros_rules.dir/severity.cpp.o" "gcc" "src/mpros/rules/CMakeFiles/mpros_rules.dir/severity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpros/common/CMakeFiles/mpros_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/domain/CMakeFiles/mpros_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/dsp/CMakeFiles/mpros_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
