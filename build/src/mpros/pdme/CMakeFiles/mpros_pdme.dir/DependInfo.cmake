
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpros/pdme/browser.cpp" "src/mpros/pdme/CMakeFiles/mpros_pdme.dir/browser.cpp.o" "gcc" "src/mpros/pdme/CMakeFiles/mpros_pdme.dir/browser.cpp.o.d"
  "/root/repo/src/mpros/pdme/health.cpp" "src/mpros/pdme/CMakeFiles/mpros_pdme.dir/health.cpp.o" "gcc" "src/mpros/pdme/CMakeFiles/mpros_pdme.dir/health.cpp.o.d"
  "/root/repo/src/mpros/pdme/mimosa.cpp" "src/mpros/pdme/CMakeFiles/mpros_pdme.dir/mimosa.cpp.o" "gcc" "src/mpros/pdme/CMakeFiles/mpros_pdme.dir/mimosa.cpp.o.d"
  "/root/repo/src/mpros/pdme/pdme.cpp" "src/mpros/pdme/CMakeFiles/mpros_pdme.dir/pdme.cpp.o" "gcc" "src/mpros/pdme/CMakeFiles/mpros_pdme.dir/pdme.cpp.o.d"
  "/root/repo/src/mpros/pdme/resident.cpp" "src/mpros/pdme/CMakeFiles/mpros_pdme.dir/resident.cpp.o" "gcc" "src/mpros/pdme/CMakeFiles/mpros_pdme.dir/resident.cpp.o.d"
  "/root/repo/src/mpros/pdme/spatial.cpp" "src/mpros/pdme/CMakeFiles/mpros_pdme.dir/spatial.cpp.o" "gcc" "src/mpros/pdme/CMakeFiles/mpros_pdme.dir/spatial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpros/common/CMakeFiles/mpros_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/domain/CMakeFiles/mpros_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/fusion/CMakeFiles/mpros_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/net/CMakeFiles/mpros_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/oosm/CMakeFiles/mpros_oosm.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/rules/CMakeFiles/mpros_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/db/CMakeFiles/mpros_db.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/dsp/CMakeFiles/mpros_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
