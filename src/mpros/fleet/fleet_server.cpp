#include "mpros/fleet/fleet_server.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "mpros/common/assert.hpp"
#include "mpros/common/log.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::fleet {

namespace {

struct FleetMetrics {
  telemetry::Counter& summaries_applied;
  telemetry::Counter& summaries_stale;
  telemetry::Counter& duplicates_dropped;
  telemetry::Counter& malformed_dropped;
  telemetry::Counter& heartbeats;
  telemetry::Counter& publishes;
  telemetry::Gauge& ships_alive;
  telemetry::Gauge& ships_lost;
  telemetry::Gauge& outliers;

  static FleetMetrics& instance() {
    static auto& reg = telemetry::Registry::instance();
    static FleetMetrics m{
        reg.counter("fleet.summaries_applied"),
        reg.counter("fleet.summaries_stale"),
        reg.counter("fleet.duplicates_dropped"),
        reg.counter("fleet.malformed_dropped"),
        reg.counter("fleet.heartbeats"),
        reg.counter("fleet.publishes"),
        reg.gauge("fleet.ships_alive"),
        reg.gauge("fleet.ships_lost"),
        reg.gauge("fleet.outliers"),
    };
    return m;
  }
};

double median(std::vector<double> v) {
  MPROS_EXPECTS(!v.empty());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    std::nth_element(v.begin(),
                     v.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                     v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = (m + v[mid - 1]) / 2.0;
  }
  return m;
}

/// Robust population stats for one comparison group (the resident
/// fleet-comparative math from §5.7, run shore-side across hulls).
struct RobustStats {
  double med = 1.0;
  double mad = 0.0;
};

RobustStats robust_stats(const std::vector<double>& values,
                         const FleetServerConfig& cfg) {
  RobustStats out;
  out.med = median(values);
  std::vector<double> abs_dev;
  abs_dev.reserve(values.size());
  for (const double v : values) abs_dev.push_back(std::fabs(v - out.med));
  // Floor the MAD so a uniformly healthy population (MAD ~ 0) does not turn
  // measurement noise into sigma-shattering z-scores.
  out.mad = std::max(median(abs_dev), cfg.min_health_delta / cfg.z_threshold);
  return out;
}

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                                   sizeof buf - 1));
}

}  // namespace

const char* to_string(ShipLiveness liveness) {
  switch (liveness) {
    case ShipLiveness::Alive: return "Alive";
    case ShipLiveness::Stale: return "Stale";
    case ShipLiveness::Lost: return "Lost";
  }
  return "?";
}

FleetServer::FleetServer(FleetServerConfig cfg) : cfg_(cfg) {
  MPROS_EXPECTS(cfg.summary_interval.micros() > 0);
  MPROS_EXPECTS(cfg.stale_after_missed >= 1);
  MPROS_EXPECTS(cfg.lost_after_missed > cfg.stale_after_missed);
  MPROS_EXPECTS(cfg.z_threshold > 0.0);
  // Readers must never observe a null view, even before the first publish.
  published_.store(std::make_shared<const FleetSnapshot>(),
                   std::memory_order_release);
}

void FleetServer::expect_ship(ShipId ship, std::string name, SimTime since) {
  std::lock_guard lock(mu_);
  ShipState& s = ships_[ship.value()];
  if (s.name.empty()) s.name = std::move(name);
  s.since = std::max(s.since, since);
  s.last_heard = std::max(s.last_heard, since);
}

void FleetServer::note_ship_alive_locked(ShipState& state, SimTime at) {
  state.last_heard = std::max(state.last_heard, at);
  if (state.liveness != ShipLiveness::Alive) {
    MPROS_LOG_INFO("fleet", "ship %s recovered (%s -> Alive)",
                   state.name.c_str(), to_string(state.liveness));
    state.liveness = ShipLiveness::Alive;
    ++stats_.liveness_transitions;
  }
}

net::AckMessage FleetServer::accept(const net::FleetSummaryEnvelope& env,
                                    SimTime at) {
  MPROS_EXPECTS(env.sequence >= 1);
  FleetMetrics& metrics = FleetMetrics::instance();
  std::lock_guard lock(mu_);
  ShipState& state = ships_[env.ship.value()];
  note_ship_alive_locked(state, at);

  const DcId stream(env.ship.value());
  if (receiver_.is_duplicate(stream, env.sequence)) {
    ++stats_.duplicates_dropped;
    metrics.duplicates_dropped.inc();
    return receiver_.make_ack(stream);
  }
  const net::ReliableReceiver::Outcome outcome =
      receiver_.on_envelope(stream, env.sequence);
  stats_.gaps_detected += outcome.new_gaps;

  // Latest-sequence-wins: a retransmitted or reordered older summary heals
  // the stream (acked above) but never regresses the hull's current view —
  // the merged state is a function of the summary set, not arrival order.
  if (env.sequence > state.applied_sequence) {
    state.applied_sequence = env.sequence;
    state.latest = env.summary;
    state.has_summary = true;
    if (!env.summary.ship_name.empty()) state.name = env.summary.ship_name;
    ++stats_.summaries_applied;
    metrics.summaries_applied.inc();
  } else {
    ++stats_.summaries_stale;
    metrics.summaries_stale.inc();
  }
  return outcome.ack;
}

void FleetServer::accept(const net::HeartbeatMessage& hb, SimTime at) {
  FleetMetrics& metrics = FleetMetrics::instance();
  std::lock_guard lock(mu_);
  // The heartbeat's DcId field carries the hull's stream id (see
  // fleet_summary.hpp): same beacon type, one tier up.
  ShipState& state = ships_[hb.dc.value()];
  note_ship_alive_locked(state, at);
  ++state.heartbeats;
  ++stats_.heartbeats;
  metrics.heartbeats.inc();
  stats_.gaps_detected += receiver_.on_advertised(hb.dc, hb.last_sequence);
}

void FleetServer::attach_to_network(net::SimNetwork& network,
                                    const std::string& endpoint_name) {
  {
    std::lock_guard lock(mu_);
    network_ = &network;
    endpoint_name_ = endpoint_name;
  }
  network.register_endpoint(endpoint_name, [this](const net::Message& message) {
    FleetMetrics& metrics = FleetMetrics::instance();
    // The ship-to-shore link is the most hostile hop in the system: decode
    // fail-soft, count what does not parse, never abort shore-side.
    const auto type = net::try_peek_type(message.payload);
    if (!type.has_value()) {
      std::lock_guard lock(mu_);
      ++stats_.malformed_dropped;
      metrics.malformed_dropped.inc();
      return;
    }
    switch (*type) {
      case net::MessageType::FleetSummaryEnvelopeMsg: {
        const auto env = net::try_unwrap_fleet_envelope(message.payload);
        if (!env.has_value()) {
          std::lock_guard lock(mu_);
          ++stats_.malformed_dropped;
          metrics.malformed_dropped.inc();
          return;
        }
        // Duplicates are re-acked too — the retransmission may mean our
        // previous ack was the datagram that got lost.
        const net::AckMessage ack = accept(*env, message.delivered_at);
        std::lock_guard lock(mu_);
        ships_[env->ship.value()].endpoint = message.from;
        if (network_ != nullptr) {
          network_->send(endpoint_name_, message.from, net::wrap(ack),
                         message.delivered_at);
          ++stats_.acks_sent;
        }
        break;
      }
      case net::MessageType::Heartbeat: {
        const auto hb = net::try_unwrap_heartbeat(message.payload);
        if (!hb.has_value()) {
          std::lock_guard lock(mu_);
          ++stats_.malformed_dropped;
          metrics.malformed_dropped.inc();
          return;
        }
        accept(*hb, message.delivered_at);
        {
          std::lock_guard lock(mu_);
          ships_[hb->dc.value()].endpoint = message.from;
        }
        break;
      }
      default: {
        // Shipboard traffic does not belong on the shore uplink.
        std::lock_guard lock(mu_);
        ++stats_.malformed_dropped;
        metrics.malformed_dropped.inc();
        break;
      }
    }
  });
}

bool FleetServer::send_command(ShipId ship, const net::CommandMessage& cmd,
                               SimTime at) {
  std::lock_guard lock(mu_);
  if (network_ == nullptr) return false;
  const auto it = ships_.find(ship.value());
  const std::string endpoint =
      (it != ships_.end() && !it->second.endpoint.empty())
          ? it->second.endpoint
          : "hull-" + std::to_string(ship.value());
  network_->send(endpoint_name_, endpoint, net::wrap(cmd), at);
  ++stats_.commands_sent;
  static telemetry::Counter& commands =
      telemetry::Registry::instance().counter("fleet.commands_sent");
  commands.inc();
  return true;
}

void FleetServer::update_liveness_locked(SimTime now) {
  for (auto& [ship, s] : ships_) {
    const SimTime silent = now - s.last_heard;
    const auto missed = static_cast<std::size_t>(
        silent.micros() / cfg_.summary_interval.micros());
    ShipLiveness verdict = ShipLiveness::Alive;
    if (missed >= cfg_.lost_after_missed) {
      verdict = ShipLiveness::Lost;
    } else if (missed >= cfg_.stale_after_missed) {
      verdict = ShipLiveness::Stale;
    }
    // Watchdog only degrades; note_ship_alive_locked handles recovery.
    if (verdict > s.liveness) {
      MPROS_LOG_WARN("fleet",
                     "ship %s (id %llu) %s -> %s: silent %.0f s (%zu intervals)",
                     s.name.c_str(), static_cast<unsigned long long>(ship),
                     to_string(s.liveness), to_string(verdict),
                     silent.seconds(), missed);
      s.liveness = verdict;
      ++stats_.liveness_transitions;
    }
  }
}

std::shared_ptr<const FleetSnapshot> FleetServer::build_snapshot_locked(
    SimTime now) const {
  auto snap = std::make_shared<FleetSnapshot>();
  snap->epoch = epoch_;
  snap->as_of = now;
  snap->ships_expected = ships_.size();
  snap->ships.reserve(ships_.size());

  // Pass 1: per-hull rows and the flat machine list.
  for (const auto& [id, s] : ships_) {
    ShipStatus row;
    row.ship = ShipId(id);
    row.name = s.name;
    row.liveness = s.liveness;
    row.last_sequence = s.applied_sequence;
    row.has_summary = s.has_summary;
    switch (s.liveness) {
      case ShipLiveness::Alive: ++snap->ships_alive; break;
      case ShipLiveness::Stale: ++snap->ships_stale; break;
      case ShipLiveness::Lost: ++snap->ships_lost; break;
    }
    if (s.has_summary) {
      const net::FleetSummary& sum = s.latest;
      row.last_summary_time = sum.timestamp;
      row.dcs_alive = sum.dcs_alive;
      row.dcs_stale = sum.dcs_stale;
      row.dcs_lost = sum.dcs_lost;
      row.quarantine_active = sum.quarantine_active;
      row.quarantine_total = sum.quarantine_total;
      snap->quarantine_active += sum.quarantine_active;
      snap->quarantine_total += sum.quarantine_total;
      double health_sum = 0.0;
      for (const net::MachineHealthSummary& m : sum.machines) {
        health_sum += m.health;
        FleetMaintenanceItem item;
        item.ship = row.ship;
        item.ship_name = s.name;
        item.machine = m.machine;
        item.machine_name = m.name;
        item.klass = m.klass;
        item.health = m.health;
        item.has_diagnosis = m.has_diagnosis;
        item.mode = m.top_mode;
        item.belief = m.top_belief;
        item.severity = m.top_severity;
        item.priority = m.priority;
        item.report_count = m.report_count;
        item.has_median_ttf = m.has_median_ttf;
        item.median_ttf = m.median_ttf;
        snap->items.push_back(std::move(item));
      }
      if (!sum.machines.empty()) {
        row.mean_health =
            health_sum / static_cast<double>(sum.machines.size());
      }
    }
    snap->ships.push_back(std::move(row));
  }

  // Pass 2: fleet-comparative baseline per sister-machine class. This is
  // the diagnosis no single hull can make — a machine unremarkable aboard
  // may still be the sickest of its class fleet-wide.
  std::map<std::string, std::vector<std::size_t>> by_klass;  // item indices
  for (std::size_t i = 0; i < snap->items.size(); ++i) {
    by_klass[snap->items[i].klass].push_back(i);
  }
  for (const auto& [klass, members] : by_klass) {
    if (members.size() < cfg_.min_fleet) continue;
    std::vector<double> values;
    values.reserve(members.size());
    for (const std::size_t i : members) {
      values.push_back(snap->items[i].health);
    }
    const RobustStats st = robust_stats(values, cfg_);
    for (const std::size_t i : members) {
      FleetMaintenanceItem& item = snap->items[i];
      const double delta = item.health - st.med;
      item.fleet_z = delta / st.mad;
      // Only sicker-than-fleet flags; a machine healthier than its sisters
      // is good news, not a maintenance item.
      if (delta <= -cfg_.min_health_delta && item.fleet_z <= -cfg_.z_threshold) {
        item.fleet_outlier = true;
        FleetOutlier out;
        out.klass = klass;
        out.ship = item.ship;
        out.ship_name = item.ship_name;
        out.machine = item.machine;
        out.machine_name = item.machine_name;
        out.health = item.health;
        out.fleet_median = st.med;
        out.robust_z = item.fleet_z;
        snap->outliers.push_back(std::move(out));
      }
    }
  }

  // Pass 3: hull-level divergence from the fleet baseline.
  std::vector<double> hull_health;
  for (const ShipStatus& row : snap->ships) {
    if (row.has_summary) hull_health.push_back(row.mean_health);
  }
  if (hull_health.size() >= cfg_.min_fleet) {
    const RobustStats st = robust_stats(hull_health, cfg_);
    for (ShipStatus& row : snap->ships) {
      if (!row.has_summary) continue;
      const double delta = row.mean_health - st.med;
      row.fleet_z = delta / st.mad;
      row.outlier_hull =
          delta <= -cfg_.min_health_delta && row.fleet_z <= -cfg_.z_threshold;
    }
  }

  // Worst first; (ship, machine) tie-break keeps the order deterministic
  // when priorities collide (e.g. a healthy fleet of all-zero priorities).
  std::sort(snap->items.begin(), snap->items.end(),
            [](const FleetMaintenanceItem& a, const FleetMaintenanceItem& b) {
              if (a.priority != b.priority) return a.priority > b.priority;
              if (a.health != b.health) return a.health < b.health;
              if (a.ship.value() != b.ship.value()) {
                return a.ship.value() < b.ship.value();
              }
              return a.machine.value() < b.machine.value();
            });
  std::sort(snap->outliers.begin(), snap->outliers.end(),
            [](const FleetOutlier& a, const FleetOutlier& b) {
              if (a.robust_z != b.robust_z) return a.robust_z < b.robust_z;
              if (a.ship.value() != b.ship.value()) {
                return a.ship.value() < b.ship.value();
              }
              return a.machine.value() < b.machine.value();
            });
  return snap;
}

void FleetServer::publish(SimTime now) {
  FleetMetrics& metrics = FleetMetrics::instance();
  std::shared_ptr<const FleetSnapshot> snap;
  {
    std::lock_guard lock(mu_);
    update_liveness_locked(now);
    ++epoch_;
    ++stats_.publishes;
    snap = build_snapshot_locked(now);
  }
  metrics.publishes.inc();
  metrics.ships_alive.set(static_cast<double>(snap->ships_alive));
  metrics.ships_lost.set(static_cast<double>(snap->ships_lost));
  metrics.outliers.set(static_cast<double>(snap->outliers.size()));
  // The merge barrier's single visible effect: one release-store readers
  // pick up wholesale. No reader ever sees a half-built view. The epoch
  // gate is stored second, so a reader that observes the new epoch is
  // guaranteed at least this snapshot from the pointer load.
  const std::uint64_t epoch = snap->epoch;
  published_.store(std::move(snap), std::memory_order_release);
  published_epoch_.store(epoch, std::memory_order_release);
}

ShipLiveness FleetServer::ship_liveness(ShipId ship) const {
  std::lock_guard lock(mu_);
  const auto it = ships_.find(ship.value());
  return it == ships_.end() ? ShipLiveness::Alive : it->second.liveness;
}

std::string FleetServer::render(const FleetSnapshot& snap,
                                std::size_t max_items) {
  // No epoch, no duplicate/stale counters: everything rendered is a
  // function of the applied summary set and the watchdog clock, so the
  // same set yields the same bytes regardless of arrival order.
  std::string out;
  out += "=== Fleet status";
  append(out, " (as of %.0f s) ===\n", snap.as_of.seconds());
  append(out, "ships: %zu expected, %zu alive, %zu stale, %zu lost\n",
         snap.ships_expected, snap.ships_alive, snap.ships_stale,
         snap.ships_lost);
  append(out, "quarantine: %u active channels, %llu reports filed\n",
         snap.quarantine_active,
         static_cast<unsigned long long>(snap.quarantine_total));
  for (const ShipStatus& s : snap.ships) {
    append(out, "  [%llu] %-18s %-5s",
           static_cast<unsigned long long>(s.ship.value()), s.name.c_str(),
           to_string(s.liveness));
    if (s.has_summary) {
      append(out, " health=%.3f dcs=%u/%u/%u q=%u", s.mean_health, s.dcs_alive,
             s.dcs_stale, s.dcs_lost, s.quarantine_active);
      if (s.outlier_hull) append(out, " FLEET-OUTLIER z=%.2f", s.fleet_z);
    } else {
      out += " (no summary)";
    }
    out += "\n";
  }
  if (!snap.outliers.empty()) {
    out += "--- Fleet outliers (sister-machine baseline) ---\n";
    for (const FleetOutlier& o : snap.outliers) {
      append(out, "  %s: %s/%s health=%.3f vs fleet median %.3f (z=%.2f)\n",
             o.klass.c_str(), o.ship_name.c_str(), o.machine_name.c_str(),
             o.health, o.fleet_median, o.robust_z);
    }
  }
  out += "--- Cross-fleet maintenance priorities ---\n";
  std::size_t shown = 0;
  for (const FleetMaintenanceItem& item : snap.items) {
    if (shown >= max_items) break;
    if (!item.has_diagnosis && !item.fleet_outlier) continue;
    append(out, "  %2zu. %s/%s [%s] health=%.3f", ++shown,
           item.ship_name.c_str(), item.machine_name.c_str(),
           item.klass.c_str(), item.health);
    if (item.has_diagnosis) {
      append(out, " %s belief=%.2f sev=%.2f prio=%.3f (%u rpts)",
             domain::to_string(item.mode), item.belief, item.severity,
             item.priority, item.report_count);
    }
    if (item.has_median_ttf) {
      append(out, " ttf=%.1fh", item.median_ttf.hours());
    }
    if (item.fleet_outlier) append(out, " FLEET-OUTLIER z=%.2f", item.fleet_z);
    out += "\n";
  }
  if (shown == 0) out += "  (none)\n";
  return out;
}

std::string FleetServer::render_fleet_view(std::size_t max_items) const {
  return render(*snapshot(), max_items);
}

net::ReliableReceiver::Stats FleetServer::receiver_stats() const {
  std::lock_guard lock(mu_);
  return receiver_.stats();
}

std::uint64_t FleetServer::cumulative(ShipId ship) const {
  std::lock_guard lock(mu_);
  return receiver_.cumulative(DcId(ship.value()));
}

FleetServer::Stats FleetServer::stats_snapshot() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace mpros::fleet
