#pragma once
// SBFR bytecode instruction set.
//
// State-Based Feature Recognition (paper §6.3) runs "enhanced finite-state
// machines" on embedded Data Concentrators; machines are tiny downloadable
// images ("new finite-state machines may be downloaded into the smart
// sensor") interpreted by a ~2 KB interpreter. We realize that with a small
// stack VM: transition conditions and actions are byte programs over sensor
// inputs, machine-local variables, shared status registers, and the elapsed
// time in the current state (the paper's ∆T).
//
// Encoding: one opcode byte, followed by an immediate when noted. Constants
// are float32 little-endian (4 bytes) to keep images small.

#include <cstdint>

namespace mpros::sbfr {

enum class Op : std::uint8_t {
  // Loads (push one value)
  PushConst = 0x01,  // imm: f32
  LoadInput = 0x02,  // imm: u8 channel — current sample on that channel
  LoadDelta = 0x03,  // imm: u8 channel — current minus previous sample
  LoadLocal = 0x04,  // imm: u8 index — this machine's local variable
  LoadStatus = 0x05, // imm: u8 machine — any machine's status register
  LoadState = 0x06,  // imm: u8 machine — any machine's current state index
  LoadDt = 0x07,     // ticks since this machine entered its current state

  // Arithmetic / logic (pop operands, push result; booleans are 0.0 / 1.0)
  Add = 0x10,
  Sub = 0x11,
  Mul = 0x12,
  Div = 0x13,
  Neg = 0x14,
  Not = 0x15,
  Lt = 0x16,
  Le = 0x17,
  Gt = 0x18,
  Ge = 0x19,
  Eq = 0x1A,
  Ne = 0x1B,
  And = 0x1C,
  Or = 0x1D,
  BitAnd = 0x1E,  // on llround()ed operands — used for status masks
  BitOr = 0x1F,

  // Action-only stores (pop one value)
  StoreLocal = 0x20,   // imm: u8 index
  StoreStatus = 0x21,  // imm: u8 machine
  Emit = 0x22,         // imm: u8 event code; pops the event payload

  End = 0x7F,
};

/// VM evaluation stack depth; programs exceeding it fail validation.
inline constexpr std::size_t kMaxStackDepth = 16;

/// Size of the immediate operand for an opcode (0, 1, or 4 bytes).
[[nodiscard]] constexpr std::size_t immediate_size(Op op) {
  switch (op) {
    case Op::PushConst:
      return 4;
    case Op::LoadInput:
    case Op::LoadDelta:
    case Op::LoadLocal:
    case Op::LoadStatus:
    case Op::LoadState:
    case Op::StoreLocal:
    case Op::StoreStatus:
    case Op::Emit:
      return 1;
    default:
      return 0;
  }
}

}  // namespace mpros::sbfr
