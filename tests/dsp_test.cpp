// DSP substrate tests: FFT correctness, spectra, statistics, cepstrum, DCT,
// envelope, filters.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mpros/common/rng.hpp"
#include "mpros/common/units.hpp"
#include "mpros/dsp/cepstrum.hpp"
#include "mpros/dsp/dct.hpp"
#include "mpros/dsp/envelope.hpp"
#include "mpros/dsp/fft.hpp"
#include "mpros/dsp/filter.hpp"
#include "mpros/dsp/plan_cache.hpp"
#include "mpros/dsp/spectrum.hpp"
#include "mpros/dsp/stats.hpp"
#include "mpros/dsp/stft.hpp"
#include "mpros/dsp/window.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::dsp {
namespace {

std::vector<double> sine(std::size_t n, double freq_hz, double rate_hz,
                         double amp = 1.0, double phase = 0.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amp * std::sin(kTwoPi * freq_hz * static_cast<double>(i) / rate_hz +
                          phase);
  }
  return x;
}

TEST(FftTest, MatchesDirectDftOnRandomInput) {
  Rng rng(1);
  constexpr std::size_t kN = 64;
  std::vector<Complex> x(kN);
  for (auto& c : x) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));

  std::vector<Complex> expected(kN);
  for (std::size_t k = 0; k < kN; ++k) {
    Complex sum{};
    for (std::size_t j = 0; j < kN; ++j) {
      const double angle = -kTwoPi * static_cast<double>(j * k) / kN;
      sum += x[j] * Complex(std::cos(angle), std::sin(angle));
    }
    expected[k] = sum;
  }

  std::vector<Complex> actual = x;
  FftPlan(kN).forward(actual);
  for (std::size_t k = 0; k < kN; ++k) {
    EXPECT_NEAR(actual[k].real(), expected[k].real(), 1e-9);
    EXPECT_NEAR(actual[k].imag(), expected[k].imag(), 1e-9);
  }
}

TEST(FftTest, ForwardInverseRoundTrip) {
  Rng rng(2);
  std::vector<Complex> x(256);
  for (auto& c : x) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  std::vector<Complex> y = x;
  const FftPlan plan(x.size());
  plan.forward(y);
  plan.inverse(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-10);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-10);
  }
}

TEST(FftTest, NextPowerOfTwo) {
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(2), 2u);
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(1000), 1024u);
}

TEST(FftTest, RealSignalZeroPadding) {
  const std::vector<double> x = sine(300, 50.0, 1000.0);
  const std::vector<Complex> spec = fft_real(x);
  EXPECT_EQ(spec.size(), 512u);  // padded to next power of two
}

TEST(RfftTest, HalfSpectrumMatchesFullComplexFft) {
  // Property: the packed real transform agrees with the reference complex
  // FFT within 1e-12 across sizes, windows, and random signals.
  Rng rng(42);
  for (std::size_t n : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    for (WindowKind kind :
         {WindowKind::Rectangular, WindowKind::Hann, WindowKind::Hamming,
          WindowKind::Blackman, WindowKind::FlatTop}) {
      std::vector<double> x(n);
      for (double& v : x) v = rng.uniform(-1, 1);
      apply_window(x, make_window(kind, n));

      const std::vector<Complex> full = fft_real(x, n);
      const std::vector<Complex> half = rfft(x, n);
      ASSERT_EQ(half.size(), n / 2 + 1);
      for (std::size_t k = 0; k <= n / 2; ++k) {
        EXPECT_NEAR(half[k].real(), full[k].real(), 1e-12)
            << "n=" << n << " window=" << to_string(kind) << " bin=" << k;
        EXPECT_NEAR(half[k].imag(), full[k].imag(), 1e-12)
            << "n=" << n << " window=" << to_string(kind) << " bin=" << k;
      }
    }
  }
}

TEST(RfftTest, ZeroPadsShortInput) {
  Rng rng(43);
  std::vector<double> x(300);
  for (double& v : x) v = rng.uniform(-1, 1);
  const std::vector<Complex> half = rfft(x);  // padded to 512
  const std::vector<Complex> full = fft_real(x, 512);
  ASSERT_EQ(half.size(), 257u);
  for (std::size_t k = 0; k < half.size(); ++k) {
    EXPECT_NEAR(std::abs(half[k] - full[k]), 0.0, 1e-12);
  }
}

TEST(RfftTest, RoundTripRecoversSignal) {
  Rng rng(44);
  std::vector<double> x(1024);
  for (double& v : x) v = rng.uniform(-1, 1);
  const std::vector<double> back = irfft(rfft(x, x.size()));
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-12);
  }
}

TEST(PlanCacheTest, ReusesPlansAndCountsHits) {
  auto& reg = telemetry::Registry::instance();
  auto& hits = reg.counter("dsp.plan_cache_hit");
  auto& misses = reg.counter("dsp.plan_cache_miss");

  // Use a size nothing else in the suite touches so the miss is ours.
  constexpr std::size_t kOddSize = 1u << 14;
  const std::uint64_t misses_before = misses.value();
  const RealFftPlan& a = PlanCache::instance().real_plan(kOddSize);
  EXPECT_EQ(misses.value(), misses_before + 1);

  const std::uint64_t hits_before = hits.value();
  const RealFftPlan& b = PlanCache::instance().real_plan(kOddSize);
  EXPECT_EQ(hits.value(), hits_before + 1);
  EXPECT_EQ(&a, &b);  // stable reference, built once
}

TEST(WindowCacheTest, StableReferenceAndPrecomputedGains) {
  const CachedWindow& a = WindowCache::instance().get(WindowKind::Hann, 777);
  const CachedWindow& b = WindowCache::instance().get(WindowKind::Hann, 777);
  EXPECT_EQ(&a, &b);
  const std::vector<double> reference = make_window(WindowKind::Hann, 777);
  EXPECT_EQ(a.coeffs, reference);
  EXPECT_DOUBLE_EQ(a.coherent_gain, coherent_gain(reference));
  EXPECT_DOUBLE_EQ(a.power_gain, power_gain(reference));
}

TEST(WindowTest, HannEndsNearZeroPeakNearOne) {
  const std::vector<double> w = make_window(WindowKind::Hann, 128);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[64], 1.0, 1e-3);
}

TEST(WindowTest, GainsMatchTheory) {
  const std::vector<double> rect = make_window(WindowKind::Rectangular, 100);
  EXPECT_DOUBLE_EQ(coherent_gain(rect), 100.0);
  EXPECT_DOUBLE_EQ(power_gain(rect), 100.0);
  const std::vector<double> hann = make_window(WindowKind::Hann, 1000);
  EXPECT_NEAR(coherent_gain(hann) / 1000.0, 0.5, 1e-3);
}

TEST(SpectrumTest, UnitSineReadsUnityAmplitude) {
  // Bin-centered tone: 40 Hz with 1024 samples at 1024 Hz → bin 40.
  const std::vector<double> x = sine(1024, 40.0, 1024.0);
  const Spectrum s = amplitude_spectrum(x, 1024.0);
  EXPECT_NEAR(s.amplitude_at(40.0), 1.0, 0.02);
  EXPECT_LT(s.amplitude_at(80.0), 0.01);
}

TEST(SpectrumTest, TwoTonesResolved) {
  std::vector<double> x = sine(4096, 50.0, 4096.0, 1.0);
  const std::vector<double> x2 = sine(4096, 120.0, 4096.0, 0.5);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += x2[i];
  const Spectrum s = amplitude_spectrum(x, 4096.0);
  EXPECT_NEAR(s.amplitude_at(50.0), 1.0, 0.03);
  EXPECT_NEAR(s.amplitude_at(120.0), 0.5, 0.03);
}

TEST(SpectrumTest, FindPeaksInterpolatesOffBinFrequency) {
  // 52.3 Hz is off-bin for 1 Hz resolution.
  const std::vector<double> x = sine(4096, 52.3, 4096.0);
  const Spectrum s = amplitude_spectrum(x, 4096.0);
  const auto peaks = find_peaks(s, 1, 0.05);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0].freq_hz, 52.3, 0.2);
}

TEST(SpectrumTest, FindPeaksReportsFlatToppedPlateauOnce) {
  // Regression: a tone exactly between two bins can produce two equal
  // adjacent bins; the peak must be reported once, centered, at face value.
  Spectrum s;
  s.bin_hz = 1.0;
  s.sample_rate_hz = 16.0;
  s.amplitude = {0.0, 0.1, 0.2, 0.8, 0.8, 0.2, 0.1, 0.0};
  const auto peaks = find_peaks(s, 4, 0.05);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_DOUBLE_EQ(peaks[0].freq_hz, 3.5);   // centered on the plateau
  EXPECT_DOUBLE_EQ(peaks[0].amplitude, 0.8);  // no parabolic overshoot
}

TEST(SpectrumTest, FindPeaksPlateauAtSpectrumEdge) {
  // A plateau whose right bin is the last element used to be invisible to
  // the strict-neighbour scan.
  Spectrum s;
  s.bin_hz = 1.0;
  s.sample_rate_hz = 12.0;
  s.amplitude = {0.0, 0.1, 0.3, 0.9, 0.9};
  const auto peaks = find_peaks(s, 4, 0.05);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_DOUBLE_EQ(peaks[0].freq_hz, 3.5);
  EXPECT_DOUBLE_EQ(peaks[0].amplitude, 0.9);
}

TEST(SpectrumTest, OrderAmplitudeFindsShaftHarmonics) {
  const double shaft = 29.6;
  std::vector<double> x = sine(8192, shaft, 8192.0, 0.8);
  const std::vector<double> x2 = sine(8192, 2 * shaft, 8192.0, 0.3);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += x2[i];
  const Spectrum s = amplitude_spectrum(x, 8192.0);
  // Off-bin tones suffer up to ~1.4 dB of Hann scalloping; the order reader
  // reports the max bin, so allow that loss.
  EXPECT_NEAR(order_amplitude(s, shaft, 1.0), 0.8, 0.12);
  EXPECT_NEAR(order_amplitude(s, shaft, 2.0), 0.3, 0.06);
  EXPECT_LT(order_amplitude(s, shaft, 3.0), 0.05);
}

TEST(SpectrumTest, BandHelpers) {
  const std::vector<double> x = sine(2048, 100.0, 2048.0);
  const Spectrum s = amplitude_spectrum(x, 2048.0);
  EXPECT_GT(s.band_peak(90.0, 110.0), 0.9);
  EXPECT_LT(s.band_peak(300.0, 400.0), 0.01);
  EXPECT_GT(s.band_energy(90.0, 110.0), s.band_energy(300.0, 400.0));
  EXPECT_GT(s.total_energy(), 0.9);
}

TEST(SpectrumTest, WelchReducesVarianceOnNoise) {
  Rng rng(3);
  std::vector<double> noise(16384);
  for (double& v : noise) v = rng.normal(0.0, 1.0);
  const Spectrum one = amplitude_spectrum(noise, 16384.0);
  const Spectrum welch = welch_psd(noise, 16384.0, 1024);

  const auto variance_of = [](const Spectrum& s) {
    const std::span<const double> a(s.amplitude);
    const Moments m = moments(a.subspan(1, a.size() - 2));
    return m.variance / (m.mean * m.mean);  // normalized
  };
  EXPECT_LT(variance_of(welch), variance_of(one));
}

TEST(StatsTest, BasicAggregates) {
  const std::vector<double> x = {1.0, -2.0, 3.0, -4.0};
  EXPECT_DOUBLE_EQ(mean(x), -0.5);
  EXPECT_DOUBLE_EQ(peak_abs(x), 4.0);
  EXPECT_DOUBLE_EQ(peak_to_peak(x), 7.0);
  EXPECT_NEAR(rms(x), std::sqrt(30.0 / 4.0), 1e-12);
}

TEST(StatsTest, SineCrestFactorIsSqrt2) {
  const std::vector<double> x = sine(4096, 10.0, 4096.0);
  EXPECT_NEAR(crest_factor(x), std::numbers::sqrt2, 0.01);
}

TEST(StatsTest, GaussianKurtosisNearThree) {
  Rng rng(4);
  std::vector<double> x(50000);
  for (double& v : x) v = rng.normal(0.0, 1.0);
  EXPECT_NEAR(moments(x).kurtosis, 3.0, 0.15);
}

TEST(StatsTest, ImpulsiveSignalRaisesKurtosis) {
  Rng rng(5);
  std::vector<double> x(8192);
  for (double& v : x) v = rng.normal(0.0, 0.1);
  for (std::size_t i = 0; i < x.size(); i += 512) x[i] += 3.0;
  EXPECT_GT(moments(x).kurtosis, 6.0);
}

TEST(StatsTest, EmptyInputsAreZero) {
  const std::span<const double> empty;
  EXPECT_EQ(mean(empty), 0.0);
  EXPECT_EQ(rms(empty), 0.0);
  EXPECT_EQ(crest_factor(empty), 0.0);
}

TEST(StatsTest, ZeroCrossingsOfSine) {
  const std::vector<double> x = sine(1000, 10.0, 1000.0);
  // 10 Hz for 1 s -> ~20 crossings.
  EXPECT_NEAR(static_cast<double>(zero_crossings(x)), 20.0, 2.0);
}

TEST(CepstrumTest, DetectsHarmonicSpacing) {
  // Harmonic series at 80 Hz -> cepstral peak at 1/80 s.
  std::vector<double> x(8192, 0.0);
  for (int h = 1; h <= 10; ++h) {
    const auto tone = sine(8192, 80.0 * h, 8192.0, 1.0 / h);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += tone[i];
  }
  const std::vector<double> ceps = real_cepstrum(x);
  // Search below the first rahmonic (multiples of the true quefrency can
  // rival the fundamental).
  const double q = dominant_quefrency(ceps, 8192.0, 0.005, 0.02);
  EXPECT_NEAR(q, 1.0 / 80.0, 0.001);
}

TEST(DctTest, RoundTrip) {
  Rng rng(6);
  std::vector<double> x(33);
  for (double& v : x) v = rng.uniform(-1, 1);
  const std::vector<double> c = dct2(x);
  const std::vector<double> back = idct2(c);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-9);
  }
}

TEST(DctTest, ParsevalHolds) {
  Rng rng(7);
  std::vector<double> x(64);
  for (double& v : x) v = rng.uniform(-1, 1);
  const std::vector<double> c = dct2(x);
  double ex = 0.0, ec = 0.0;
  for (double v : x) ex += v * v;
  for (double v : c) ec += v * v;
  EXPECT_NEAR(ex, ec, 1e-9);
}

TEST(DctTest, TruncationKeepsLeadingCoefficients) {
  const std::vector<double> x = sine(128, 4.0, 128.0);
  const std::vector<double> full = dct2(x);
  const std::vector<double> trunc = dct2_truncated(x, 16);
  ASSERT_EQ(trunc.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(trunc[i], full[i]);
}

TEST(EnvelopeTest, AmplitudeModulationRecovered) {
  // 2 kHz carrier modulated at 50 Hz: envelope spectrum shows 50 Hz.
  constexpr double kRate = 16384.0;
  std::vector<double> x(16384);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / kRate;
    x[i] = (1.0 + 0.8 * std::sin(kTwoPi * 50.0 * t)) *
           std::sin(kTwoPi * 2000.0 * t);
  }
  std::vector<double> env = envelope(x);
  const double dc = mean(env);
  for (double& v : env) v -= dc;
  const Spectrum es = amplitude_spectrum(env, kRate);
  EXPECT_GT(es.amplitude_at(50.0), 0.5);
}

TEST(EnvelopeTest, BandpassedRejectsOutOfBandTone) {
  constexpr double kRate = 16384.0;
  // Strong 100 Hz tone + weak modulated 3 kHz carrier.
  std::vector<double> x(16384);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / kRate;
    x[i] = 5.0 * std::sin(kTwoPi * 100.0 * t) +
           (1.0 + 0.9 * std::sin(kTwoPi * 37.0 * t)) * 0.3 *
               std::sin(kTwoPi * 3000.0 * t);
  }
  std::vector<double> env = envelope_bandpassed(x, kRate, 2000.0, 4000.0);
  const double dc = mean(env);
  for (double& v : env) v -= dc;
  const Spectrum es = amplitude_spectrum(env, kRate);
  EXPECT_GT(es.amplitude_at(37.0), 3.0 * es.amplitude_at(100.0));
}

TEST(StftTest, StationaryToneTrackIsFlat) {
  const std::vector<double> x = sine(16384, 512.0, 8192.0);
  const Spectrogram sg = stft(x, 8192.0);
  EXPECT_GT(sg.frames(), 20u);
  const auto track = sg.tone_track(512.0);
  for (const double a : track) EXPECT_NEAR(a, 1.0, 0.05);
  EXPECT_LT(sg.burstiness(), 0.1);
}

TEST(StftTest, BurstLocalizedInTime) {
  // Tone present only in the middle quarter of the record.
  std::vector<double> x(16384, 0.0);
  for (std::size_t i = 6144; i < 10240; ++i) {
    x[i] = std::sin(kTwoPi * 512.0 * static_cast<double>(i) / 8192.0);
  }
  const Spectrogram sg = stft(x, 8192.0);
  const auto track = sg.tone_track(512.0);
  // Energy concentrated in the middle frames.
  const std::size_t mid = track.size() / 2;
  EXPECT_GT(track[mid], 0.8);
  EXPECT_LT(track[1], 0.05);
  EXPECT_LT(track[track.size() - 2], 0.05);
  EXPECT_GT(sg.burstiness(), 0.5);
}

TEST(StftTest, FrameGeometry) {
  StftConfig cfg;
  cfg.segment_size = 256;
  cfg.hop = 128;
  const std::vector<double> x = sine(1024, 100.0, 1024.0);
  const Spectrogram sg = stft(x, 1024.0, cfg);
  EXPECT_EQ(sg.frames(), 1u + (1024u - 256u) / 128u);
  EXPECT_EQ(sg.bins(), 129u);
  EXPECT_DOUBLE_EQ(sg.bin_hz(), 4.0);
  EXPECT_DOUBLE_EQ(sg.frame_step_s(), 0.125);
}

TEST(BiquadTest, LowpassAttenuatesHighFrequencies) {
  Biquad lp = Biquad::lowpass(1000.0, 50.0);
  std::vector<double> lo = sine(2000, 10.0, 1000.0);
  std::vector<double> hi = sine(2000, 400.0, 1000.0);
  lp.process(lo);
  lp.reset();
  lp.process(hi);
  const std::span<const double> lo_tail(lo.data() + 1000, 1000);
  const std::span<const double> hi_tail(hi.data() + 1000, 1000);
  EXPECT_GT(rms(lo_tail), 0.6);
  EXPECT_LT(rms(hi_tail), 0.05);
}

TEST(BiquadTest, HighpassAttenuatesLowFrequencies) {
  Biquad hp = Biquad::highpass(1000.0, 200.0);
  std::vector<double> lo = sine(2000, 5.0, 1000.0);
  hp.process(lo);
  const std::span<const double> tail(lo.data() + 1000, 1000);
  EXPECT_LT(rms(tail), 0.05);
}

TEST(RmsTrackerTest, ConvergesToTrueRms) {
  RmsTracker tracker(200.0);
  const std::vector<double> x = sine(5000, 50.0, 5000.0, 2.0);
  double last = 0.0;
  for (double v : x) last = tracker.step(v);
  EXPECT_NEAR(last, 2.0 / std::numbers::sqrt2, 0.1);
}

TEST(ExpSmootherTest, PrimesOnFirstSample) {
  ExpSmoother s(0.1);
  EXPECT_DOUBLE_EQ(s.step(5.0), 5.0);
  EXPECT_NEAR(s.step(10.0), 5.5, 1e-12);
}

}  // namespace
}  // namespace mpros::dsp
