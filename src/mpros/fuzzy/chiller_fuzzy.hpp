#pragma once
// Fuzzy diagnostics for the chiller's non-vibrational signals.
//
// Stands in for the Georgia Tech fuzzy system (paper §1.1 item 4): it
// "draws diagnostic and prognostic conclusions from non-vibrational data".
// One Mamdani engine per process-observable failure mode maps temperatures,
// pressures, superheat and current onto a 0..1 severity, which is then
// packaged with the same gradient/prognosis mapping the DLI substitute uses.

#include <map>
#include <string>
#include <vector>

#include "mpros/domain/equipment.hpp"
#include "mpros/domain/failure_modes.hpp"
#include "mpros/fuzzy/engine.hpp"
#include "mpros/rules/engine.hpp"

namespace mpros::fuzzy {

/// Crisp process-variable snapshot, keyed by the rules::feat process keys
/// (process.load, process.oil_temp_c, ...).
using ProcessSnapshot = std::map<std::string, double>;

class FuzzyDiagnoser {
 public:
  explicit FuzzyDiagnoser(
      const domain::ProcessNominals& nominals = domain::navy_chiller_nominals());

  /// Evaluate all process-mode engines. Fired modes (severity above
  /// `fire_threshold`) return as rules::Diagnosis so downstream protocol
  /// packaging is shared with the vibration expert system.
  [[nodiscard]] std::vector<rules::Diagnosis> evaluate(
      const ProcessSnapshot& snapshot,
      const rules::BelievabilityTable& beliefs) const;

  /// Crisp severity for one mode (0 if the mode has no engine).
  [[nodiscard]] double severity(domain::FailureMode mode,
                                const ProcessSnapshot& snapshot) const;

  /// Modes this diagnoser covers.
  [[nodiscard]] std::vector<domain::FailureMode> covered_modes() const;

  static constexpr double kFireThreshold = 0.20;

 private:
  struct ModeEngine {
    domain::FailureMode mode;
    MamdaniEngine engine;
    std::string recommendation;
  };
  std::vector<ModeEngine> engines_;
};

}  // namespace mpros::fuzzy
