#include "mpros/net/codec.hpp"

#include <cstring>

#include "mpros/common/assert.hpp"

namespace mpros::net {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  u64(bits);
}

void Writer::str(const std::string& s) {
  MPROS_EXPECTS(s.size() <= 0xFFFFFFFFu);
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Reader::need(std::size_t n) { MPROS_EXPECTS(pos_ + n <= data_.size()); }

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::string Reader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

bool TryReader::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t TryReader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint16_t TryReader::u16() {
  if (!take(2)) return 0;
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t TryReader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t TryReader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int64_t TryReader::i64() { return static_cast<std::int64_t>(u64()); }

double TryReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::string TryReader::str() {
  const std::uint32_t len = u32();
  // Length check before allocating: a corrupted length must not become a
  // multi-gigabyte allocation.
  if (!ok_ || data_.size() - pos_ < len) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

void TryReader::str(std::string& out) {
  const std::uint32_t len = u32();
  if (!ok_ || data_.size() - pos_ < len) {
    ok_ = false;
    out.clear();
    return;
  }
  out.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
}

}  // namespace mpros::net
