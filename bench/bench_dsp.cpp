// E16 — Zero-rebuild real-FFT fast path (ISSUE 2).
//
// The seed DSP layer rebuilt its FFT plan (bit-reversal table + twiddles)
// and window taper on every amplitude_spectrum() call and ran real signals
// through a full complex transform. The cached path shares plans and
// windows process-wide, packs N reals into an N/2 complex FFT, and reuses
// a per-thread scratch arena so steady-state extraction never allocates.
//
// The google-benchmark suite covers interactive runs; main() additionally
// takes a fixed-repetition median of both paths and writes the numbers to
// BENCH_DSP.json at the current working directory (run from the repo root
// to refresh the committed copy). Acceptance: cached single-spectrum
// latency >= 2x better than the rebuild path.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "mpros/dsp/fft.hpp"
#include "mpros/dsp/spectrum.hpp"
#include "mpros/dsp/window.hpp"
#include "mpros/rules/features.hpp"

namespace {

using namespace mpros;

constexpr double kRate = 40960.0;
constexpr std::size_t kWindow = 8192;

std::vector<double> test_waveform() {
  std::vector<double> x(kWindow);
  for (std::size_t i = 0; i < kWindow; ++i) {
    const double t = static_cast<double>(i) / kRate;
    x[i] = std::sin(2.0 * M_PI * 29.6 * t) +
           0.3 * std::sin(2.0 * M_PI * 1273.0 * t) +
           0.1 * std::sin(2.0 * M_PI * 5421.0 * t);
  }
  return x;
}

// The seed implementation, verbatim in shape: window rebuilt per call,
// plan rebuilt per call, full complex transform of a real signal.
void legacy_amplitude_spectrum(std::span<const double> x,
                               double sample_rate_hz, dsp::Spectrum& out) {
  const std::size_t n = kWindow;
  const std::vector<double> window =
      dsp::make_window(dsp::WindowKind::Hann, x.size());
  std::vector<double> windowed(x.begin(), x.end());
  dsp::apply_window(windowed, window);

  std::vector<dsp::Complex> buf(n, dsp::Complex{});
  std::transform(windowed.begin(), windowed.end(), buf.begin(),
                 [](double v) { return dsp::Complex(v, 0.0); });
  dsp::FftPlan(n).forward(buf);

  out.sample_rate_hz = sample_rate_hz;
  out.bin_hz = sample_rate_hz / static_cast<double>(n);
  out.amplitude.resize(n / 2 + 1);
  const double gain = dsp::coherent_gain(window);
  for (std::size_t i = 0; i < out.amplitude.size(); ++i) {
    double a = std::abs(buf[i]) / gain;
    if (i != 0 && i != n / 2) a *= 2.0;
    out.amplitude[i] = a;
  }
}

void BM_SingleSpectrum_Rebuild(benchmark::State& state) {
  const std::vector<double> x = test_waveform();
  dsp::Spectrum spec;
  for (auto _ : state) {
    legacy_amplitude_spectrum(x, kRate, spec);
    benchmark::DoNotOptimize(spec.amplitude.data());
  }
  state.SetLabel("per-call plan+window rebuild, complex FFT");
}
BENCHMARK(BM_SingleSpectrum_Rebuild)->Unit(benchmark::kMicrosecond);

void BM_SingleSpectrum_Cached(benchmark::State& state) {
  const std::vector<double> x = test_waveform();
  dsp::SpectrumConfig cfg;
  dsp::Spectrum spec;
  dsp::amplitude_spectrum(x, kRate, cfg, spec);  // warm caches + arena
  for (auto _ : state) {
    dsp::amplitude_spectrum(x, kRate, cfg, spec);
    benchmark::DoNotOptimize(spec.amplitude.data());
  }
  state.SetLabel("cached plan+window, real-input FFT, zero alloc");
}
BENCHMARK(BM_SingleSpectrum_Cached)->Unit(benchmark::kMicrosecond);

void BM_WelchPsd_Cached(benchmark::State& state) {
  const std::vector<double> x = test_waveform();
  dsp::Spectrum psd;
  dsp::welch_psd(x, kRate, 1024, dsp::WindowKind::Hann, psd);
  for (auto _ : state) {
    dsp::welch_psd(x, kRate, 1024, dsp::WindowKind::Hann, psd);
    benchmark::DoNotOptimize(psd.amplitude.data());
  }
  state.SetLabel("15 overlapped 1024-pt segments");
}
BENCHMARK(BM_WelchPsd_Cached)->Unit(benchmark::kMicrosecond);

void BM_FeatureFrame_Cached(benchmark::State& state) {
  const std::vector<double> x = test_waveform();
  const rules::FeatureExtractor extractor(domain::navy_chiller_signature());
  rules::FeatureFrame frame;
  extractor.extract_vibration(x, kRate, frame);
  for (auto _ : state) {
    extractor.extract_vibration(x, kRate, frame);
    benchmark::DoNotOptimize(&frame);
  }
  state.SetLabel("full vibration feature frame (spectrum+envelope)");
}
BENCHMARK(BM_FeatureFrame_Cached)->Unit(benchmark::kMicrosecond);

// Median-of-reps wall time in nanoseconds for the JSON snapshot.
template <typename Fn>
double median_ns(std::size_t reps, Fn&& fn) {
  std::vector<double> samples(reps);
  for (double& s : samples) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    s = std::chrono::duration<double, std::nano>(t1 - t0).count();
  }
  std::nth_element(samples.begin(), samples.begin() + reps / 2,
                   samples.end());
  return samples[reps / 2];
}

void write_json_snapshot() {
  const std::vector<double> x = test_waveform();
  dsp::Spectrum spec;
  dsp::SpectrumConfig cfg;
  const rules::FeatureExtractor extractor(domain::navy_chiller_signature());
  rules::FeatureFrame frame;

  // Warm the caches so the cached numbers are steady state.
  dsp::amplitude_spectrum(x, kRate, cfg, spec);
  extractor.extract_vibration(x, kRate, frame);

  const double rebuild =
      median_ns(60, [&] { legacy_amplitude_spectrum(x, kRate, spec); });
  const double cached =
      median_ns(400, [&] { dsp::amplitude_spectrum(x, kRate, cfg, spec); });
  const double feature_frame =
      median_ns(100, [&] { extractor.extract_vibration(x, kRate, frame); });

  std::FILE* f = std::fopen("BENCH_DSP.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_dsp: cannot write BENCH_DSP.json\n");
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"experiment\": \"E16\",\n"
               "  \"fft_size\": %zu,\n"
               "  \"sample_rate_hz\": %.0f,\n"
               "  \"single_spectrum_rebuild_ns\": %.0f,\n"
               "  \"single_spectrum_cached_ns\": %.0f,\n"
               "  \"single_spectrum_speedup\": %.2f,\n"
               "  \"feature_frame_cached_ns\": %.0f\n"
               "}\n",
               kWindow, kRate, rebuild, cached, rebuild / cached,
               feature_frame);
  std::fclose(f);
  std::printf("single spectrum: rebuild %.1f us -> cached %.1f us (%.2fx)\n",
              rebuild / 1e3, cached / 1e3, rebuild / cached);
  std::printf("feature frame  : %.1f us  (BENCH_DSP.json written)\n",
              feature_frame / 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "\nE16 DSP fast path (ISSUE 2; acceptance: >=2x single spectrum)\n"
      "  compare: BM_SingleSpectrum_Rebuild vs BM_SingleSpectrum_Cached\n"
      "  (rebuild = seed behaviour: plan + window built per call, full\n"
      "  complex FFT; cached = shared plan/window caches, real-input\n"
      "  transform, per-thread scratch arena)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  write_json_snapshot();
  return 0;
}
