#include "mpros/dsp/filter.hpp"

#include <cmath>

#include "mpros/common/assert.hpp"
#include "mpros/common/units.hpp"

namespace mpros::dsp {
namespace {

struct RbjCoeffs {
  double b0, b1, b2, a0, a1, a2;
};

}  // namespace

Biquad::Biquad(double b0, double b1, double b2, double a1, double a2)
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

Biquad Biquad::lowpass(double sample_rate_hz, double cutoff_hz, double q) {
  MPROS_EXPECTS(sample_rate_hz > 0.0 && cutoff_hz > 0.0 &&
                cutoff_hz < sample_rate_hz / 2.0 && q > 0.0);
  const double w0 = kTwoPi * cutoff_hz / sample_rate_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  return Biquad(((1.0 - cw) / 2.0) / a0, (1.0 - cw) / a0,
                ((1.0 - cw) / 2.0) / a0, (-2.0 * cw) / a0,
                (1.0 - alpha) / a0);
}

Biquad Biquad::highpass(double sample_rate_hz, double cutoff_hz, double q) {
  MPROS_EXPECTS(sample_rate_hz > 0.0 && cutoff_hz > 0.0 &&
                cutoff_hz < sample_rate_hz / 2.0 && q > 0.0);
  const double w0 = kTwoPi * cutoff_hz / sample_rate_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  return Biquad(((1.0 + cw) / 2.0) / a0, (-(1.0 + cw)) / a0,
                ((1.0 + cw) / 2.0) / a0, (-2.0 * cw) / a0,
                (1.0 - alpha) / a0);
}

Biquad Biquad::bandpass(double sample_rate_hz, double center_hz, double q) {
  MPROS_EXPECTS(sample_rate_hz > 0.0 && center_hz > 0.0 &&
                center_hz < sample_rate_hz / 2.0 && q > 0.0);
  const double w0 = kTwoPi * center_hz / sample_rate_hz;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  return Biquad(alpha / a0, 0.0, -alpha / a0, (-2.0 * cw) / a0,
                (1.0 - alpha) / a0);
}

double Biquad::step(double x) {
  const double y = b0_ * x + b1_ * x1_ + b2_ * x2_ - a1_ * y1_ - a2_ * y2_;
  x2_ = x1_;
  x1_ = x;
  y2_ = y1_;
  y1_ = y;
  return y;
}

void Biquad::process(std::span<double> x) {
  for (double& v : x) v = step(v);
}

void Biquad::reset() { x1_ = x2_ = y1_ = y2_ = 0.0; }

ExpSmoother::ExpSmoother(double alpha) : alpha_(alpha) {
  MPROS_EXPECTS(alpha > 0.0 && alpha <= 1.0);
}

double ExpSmoother::step(double x) {
  if (!primed_) {
    y_ = x;
    primed_ = true;
  } else {
    y_ += alpha_ * (x - y_);
  }
  return y_;
}

RmsTracker::RmsTracker(double time_constant_samples)
    : mean_square_(1.0 / std::max(1.0, time_constant_samples)) {}

double RmsTracker::step(double x) {
  mean_square_.step(x * x);
  return rms();
}

double RmsTracker::rms() const { return std::sqrt(mean_square_.value()); }

void RmsTracker::reset() { mean_square_.reset(); }

}  // namespace mpros::dsp
