file(REMOVE_RECURSE
  "CMakeFiles/mpros_domain.dir/equipment.cpp.o"
  "CMakeFiles/mpros_domain.dir/equipment.cpp.o.d"
  "CMakeFiles/mpros_domain.dir/failure_modes.cpp.o"
  "CMakeFiles/mpros_domain.dir/failure_modes.cpp.o.d"
  "libmpros_domain.a"
  "libmpros_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
