#pragma once
// Prognostic vectors and their conservative fusion (paper §5.4).
//
// "Prognostics are defined in this system as time point, probability pairs,
// and lists of these pairs." Fusion "combine[s] the lists taking the most
// conservative estimate at any given time period, and interpolating a
// smooth curve from point to point" — i.e. the fused curve is the upper
// envelope of the input curves, and a report that raises late-horizon
// probability pulls the extrapolated demise earlier (experiment E2).

#include <optional>
#include <span>
#include <vector>

#include "mpros/common/clock.hpp"

namespace mpros::fusion {

struct PrognosticPoint {
  SimTime horizon;        ///< relative to the report's effective time
  double probability = 0.0;
};

/// Reusable buffers for PrognosticVector::fuse_in_place — one per fusion
/// core keeps the per-report fuse allocation-free at steady state.
struct FuseScratch {
  std::vector<PrognosticPoint> incoming;
  std::vector<PrognosticPoint> candidates;
  std::vector<PrognosticPoint> accepted;
};

/// A monotone (in both time and probability) failure-probability curve.
class PrognosticVector {
 public:
  PrognosticVector() = default;

  /// Points are sorted by horizon; probabilities are clamped to [0,1] and
  /// made non-decreasing (a failure CDF cannot fall).
  explicit PrognosticVector(std::vector<PrognosticPoint> points);

  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] const std::vector<PrognosticPoint>& points() const {
    return points_;
  }

  /// Failure probability at horizon `t`:
  ///  - before the first point: linear from (0,0) to the first point;
  ///  - between points: linear interpolation ("interpolating a smooth curve
  ///    from point to point");
  ///  - beyond the last point: linear extrapolation along the last segment,
  ///    clamped to 1 (single-point curves stay flat).
  [[nodiscard]] double probability_at(SimTime t) const;

  /// Earliest horizon where the curve reaches probability `p`, or nullopt
  /// if it never does (within extrapolation).
  [[nodiscard]] std::optional<SimTime> time_to_probability(double p) const;

  /// Fuse one report's raw (unsorted, unclamped) points into this curve:
  /// bit-identical to `*this = fuse_conservative(*this,
  /// PrognosticVector(points))` but working entirely in caller-owned
  /// scratch, so the report-rate ingest path performs no heap allocation
  /// once the scratch buffers have warmed up.
  void fuse_in_place(std::span<const PrognosticPoint> points,
                     FuseScratch& scratch);

 private:
  std::vector<PrognosticPoint> points_;
};

/// The §5.4 rule: pointwise maximum (most conservative = earliest failure)
/// over the union of both curves' breakpoints.
[[nodiscard]] PrognosticVector fuse_conservative(const PrognosticVector& a,
                                                 const PrognosticVector& b);

/// Fold a whole set of reports.
[[nodiscard]] PrognosticVector fuse_conservative(
    const std::vector<PrognosticVector>& curves);

}  // namespace mpros::fusion
