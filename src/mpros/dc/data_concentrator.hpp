#pragma once
// The Data Concentrator (paper §1.1, §5.8).
//
// "Devices called Data Concentrators are placed near the ship's machinery.
// Each of these is a computer in its own right and has the major
// responsibility for diagnostics and prognostics." A DC hosts the four
// Phase-1 analyzers:
//   1. the DLI-style vibration expert system (rules::RuleEngine),
//   2. State Based Feature Recognition (sbfr::SbfrSystem),
//   3. the Wavelet Neural Network (nn::WnnClassifier, shared & pre-trained),
//   4. fuzzy-logic diagnostics on non-vibration data (fuzzy::FuzzyDiagnoser),
// coordinated by the event scheduler, with results logged in the DC's
// relational database and emitted as §7 failure reports.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "mpros/common/ids.hpp"
#include "mpros/db/database.hpp"
#include "mpros/dc/scheduler.hpp"
#include "mpros/dc/sensor_validator.hpp"
#include "mpros/fuzzy/chiller_fuzzy.hpp"
#include "mpros/net/messages.hpp"
#include "mpros/net/network.hpp"
#include "mpros/net/reliable.hpp"
#include "mpros/net/report.hpp"
#include "mpros/nn/classifier.hpp"
#include "mpros/plant/chiller.hpp"
#include "mpros/rules/believability.hpp"
#include "mpros/rules/dli_rules.hpp"
#include "mpros/sbfr/interpreter.hpp"
#include "mpros/telemetry/recorder.hpp"
#include "mpros/telemetry/trace.hpp"

namespace mpros::dc {

/// Well-known knowledge-source ids (§5.5's "KS ID").
inline constexpr KnowledgeSourceId kDliExpertSystem{1};
inline constexpr KnowledgeSourceId kSbfr{2};
inline constexpr KnowledgeSourceId kWaveletNeuralNet{3};
inline constexpr KnowledgeSourceId kFuzzyLogic{4};
inline constexpr KnowledgeSourceId kSensorValidator{5};

[[nodiscard]] const char* knowledge_source_name(KnowledgeSourceId ks);

/// OOSM object ids of the machinery this DC instruments.
struct MachineRefs {
  ObjectId chiller;
  ObjectId motor;
  ObjectId gearbox;
  ObjectId compressor;
};

struct DcConfig {
  DcId id{1};
  double sample_rate_hz = 40960.0;   ///< vibration digitizer rate
  std::size_t window = 8192;         ///< samples per vibration record
  /// Motor-current signature analysis needs sub-Hz resolution to resolve
  /// pole-pass sidebands, so it records long windows at a low rate.
  double current_sample_rate_hz = 4096.0;
  std::size_t current_window = 32768;
  SimTime vibration_period = SimTime::from_seconds(600.0);
  SimTime process_period = SimTime::from_seconds(60.0);
  double wnn_report_threshold = 0.45;
  /// Report suppression: a (source, object, condition) tuple re-reports
  /// only when its severity moves by at least `report_hysteresis` or after
  /// `report_refresh` of silence. Repeated identical conclusions from the
  /// same analyzer are not independent evidence, and Dempster-Shafer at the
  /// PDME would otherwise double-count them.
  double report_hysteresis = 0.05;
  SimTime report_refresh = SimTime::from_hours(0.5);
  /// Publish a SensorDataMessage every Nth process scan (0 disables).
  std::size_t sensor_publish_every = 5;
  bool enable_dli = true;
  bool enable_sbfr = true;
  bool enable_fuzzy = true;
  /// Screen every acquisition for instrument faults; quarantined channels
  /// are withheld from the analyzers and reported as sensor faults.
  bool enable_sensor_validation = true;
  SensorValidatorConfig sensor_validation = chiller_validator_config();
  /// Reliable report delivery: wrap reports in sequence-numbered envelopes,
  /// buffer them until the PDME acks, and retransmit with backoff. Off =
  /// legacy fire-and-forget FailureReportMsg datagrams.
  bool reliable_delivery = true;
  net::ReliableConfig reliable;
  /// Coalesce each sync window's reports into one ReportBatch datagram
  /// (one sequence number on the reliable stream). Off = legacy
  /// one-datagram-per-report flushing. Fused output is identical either
  /// way; batching exists for wire and ingest efficiency.
  bool batch_reports = true;
  /// Cadence of the scheduler task that sweeps the retransmit buffer.
  SimTime retransmit_sweep_period = SimTime::from_seconds(60.0);
  /// Cadence of DC->PDME liveness heartbeats (0 disables).
  SimTime heartbeat_period = SimTime::from_seconds(60.0);
  /// Offset the retransmit sweep and heartbeat by a seeded per-DC phase
  /// (net::desync_phase) so hundreds of DCs brought up together do not
  /// burst-retransmit in lockstep when an outage ends.
  bool desync_phase = true;
};

class DataConcentrator {
 public:
  /// Counters for the throughput benches.
  struct Stats {
    std::uint64_t vibration_tests = 0;
    std::uint64_t process_scans = 0;
    std::uint64_t samples_processed = 0;
    std::uint64_t reports_emitted = 0;
    std::uint64_t sensor_fault_reports = 0;
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t config_commands = 0;   ///< CommandMessages applied
    std::uint64_t config_applied = 0;    ///< settings accepted
    std::uint64_t config_rejected = 0;   ///< settings refused (bad key/value)
    std::uint64_t config_stale = 0;      ///< commands older than applied rev
  };

  struct LastReport {
    double severity = -1.0;
    SimTime at{-1};
  };

  /// Retransmission + heartbeat payloads accumulated by the DC's scheduler
  /// tasks since the last drain; the assembler sends them on the driver
  /// thread at their generation timestamps.
  struct WireDatagram {
    SimTime at;
    std::vector<std::uint8_t> payload;
  };

  /// Everything a supervisor can rescue from a wedged DC before tearing it
  /// down: the durable database (including the persisted runtime config),
  /// the believability statistics, the instrument-quarantine ledger,
  /// analyzer soft state, report-hysteresis memory, counters, the reliable
  /// stream (sequence cursor + unacked retransmit window) and the command
  /// stream's dedup state. `resume_at` is the last time the DC actually
  /// advanced to — the restarted schedule re-anchors strictly after it.
  struct Salvage {
    db::Database db;
    rules::BelievabilityTable beliefs;
    SensorValidator validator;
    sbfr::SbfrSystem sbfr;
    std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
             LastReport>
        last_reports;
    Stats stats;
    net::ReliableSender::State reliable;
    net::ReliableReceiver command_rx;
    std::vector<net::FailureReport> outbox;
    std::vector<net::SensorDataMessage> sensor_outbox;
    std::vector<WireDatagram> wire_outbox;
    SimTime resume_at;
  };

  /// `chiller` must outlive the DC. `wnn` may be null (WNN analyzer off)
  /// and is shared because training one classifier per DC would waste the
  /// fleet bench; real DCs would flash the same trained network anyway.
  /// `start_at` anchors the task schedule: zero for a fresh boot; a
  /// recovered ship passes its committed-through time so no task fires
  /// inside the already-fused interval while the plant re-simulates it.
  DataConcentrator(DcConfig cfg, MachineRefs refs,
                   plant::ChillerSimulator& chiller,
                   std::shared_ptr<nn::WnnClassifier> wnn = nullptr,
                   SimTime start_at = SimTime(0));

  /// Supervised restart: rebuild a DC around `salvage`. The persisted
  /// runtime config is re-applied from the recovered database (so the DC
  /// comes back with its last-acked configuration, not the template's), the
  /// schedule re-anchors on the first natural slot strictly after
  /// `salvage.resume_at` (phase preserved — a catch-up advance_to() then
  /// re-runs exactly the tests the wedge swallowed, at their original
  /// times), and the restored retransmit window resumes the report stream
  /// mid-sequence.
  DataConcentrator(DcConfig cfg, MachineRefs refs,
                   plant::ChillerSimulator& chiller,
                   std::shared_ptr<nn::WnnClassifier> wnn, Salvage salvage);

  /// Tear-down half of supervised recovery: strip this DC of everything a
  /// restart needs. The carcass stays destructible but must not be advanced
  /// again.
  [[nodiscard]] Salvage salvage();

  /// Advance the DC (and its chiller) to absolute time `t`, running every
  /// scheduled test that falls due. Returns the §7 reports generated.
  std::vector<net::FailureReport> advance_to(SimTime t);

  /// Sensor-data batches accumulated since the last drain (§1's "raw
  /// sensor data to other shipboard systems"; published every
  /// `sensor_publish_every` process scans).
  std::vector<net::SensorDataMessage> drain_sensor_data();

  /// Handle a §5.8 scheduler command arriving over the network.
  void handle_command(const net::TestCommandMessage& command);

  /// Dispatch any datagram from the ship's network: test commands and
  /// (when reliable delivery is on) PDME acknowledgements. Unknown or
  /// corrupt payloads are dropped.
  void handle_wire(const net::Message& msg);

  std::vector<WireDatagram> drain_wire_outbox();

  /// Runtime control plane (§4.9): apply one versioned CommandMessage.
  /// Settings are applied individually — unknown keys or out-of-range
  /// values are rejected (counted) without poisoning the rest of the
  /// command. Accepted settings persist to the DC database so a restarted
  /// DC comes back with its last-acked configuration. Commands whose
  /// revision is not newer than the last applied one are stale no-ops
  /// (the cumulative ack already covers them).
  void apply_command(const net::CommandMessage& cmd, SimTime now);

  /// Current value of one runtime-tunable setting (the apply_command keys);
  /// nullopt for unknown keys. Lets tests and the soak harness assert
  /// config convergence without reaching into subsystem internals.
  [[nodiscard]] std::optional<double> runtime_setting(
      std::string_view key) const;

  /// Revision of the last applied config command (0 = factory config).
  [[nodiscard]] std::uint64_t config_revision() const {
    return config_revision_;
  }

  /// Settings persisted since the last drain (includes the "__revision"
  /// bookkeeping key). The assembler pulls these at its step barrier to
  /// mirror the per-DC config into the ship's durable store — a pull, so
  /// the mirror write happens on the driver thread, never a DC worker.
  [[nodiscard]] std::vector<std::pair<std::string, double>>
  drain_config_updates();

  /// Full persisted runtime config (every row of the config table,
  /// "__revision" included) — what a durable mirror must hold to rebuild
  /// this DC's control-plane state after a whole-process crash.
  [[nodiscard]] std::vector<std::pair<std::string, double>>
  persisted_config() const;

  /// Crash recovery: re-impose a mirrored config on a freshly built DC —
  /// apply each setting quietly, persist it locally, and adopt the
  /// revision carried under "__revision". The entries came *from* the
  /// durable mirror, so they are not queued for re-mirroring.
  void restore_config(
      const std::vector<std::pair<std::string, double>>& settings);

  /// Dedup/ack state for the PDME->DC command stream.
  [[nodiscard]] net::ReliableReceiver& command_receiver() {
    return command_rx_;
  }

  /// Chaos hook: a wedged DC stops advancing (advance_to returns nothing,
  /// the progress tick freezes) and ignores all wire input — modelling a
  /// hung driver loop. The supervisor detects the frozen tick and restarts
  /// the DC from its salvage.
  void set_wedged(bool wedged) { wedged_ = wedged; }
  [[nodiscard]] bool wedged() const { return wedged_; }

  /// Internal progress tick: increments on every advance_to() that actually
  /// ran (wedged advances do not count). The supervisor watches this.
  [[nodiscard]] std::uint64_t progress() const { return progress_; }

  [[nodiscard]] bool reliable_delivery() const {
    return cfg_.reliable_delivery;
  }
  [[nodiscard]] bool batch_reports() const { return cfg_.batch_reports; }
  [[nodiscard]] net::ReliableSender& reliable() { return reliable_; }
  [[nodiscard]] const SensorValidator& validator() const {
    return validator_;
  }

  /// Command an immediate vibration test (§5.8: "the PDME or any other
  /// client can command the scheduler to conduct another test"). Takes
  /// effect on the next advance_to().
  void request_vibration_test();

  /// Attach a flight-recorder journal (nullptr detaches). The DC logs test
  /// runs, commanded tests and SBFR latches into it for post-hoc diagnosis;
  /// `journal` must outlive the DC or be detached first.
  void set_journal(telemetry::FlightRecorder* journal) { journal_ = journal; }

  [[nodiscard]] DcId id() const { return cfg_.id; }
  [[nodiscard]] db::Database& database() { return db_; }
  [[nodiscard]] rules::BelievabilityTable& believability() {
    return beliefs_;
  }
  [[nodiscard]] const MachineRefs& machines() const { return refs_; }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void run_vibration_test(SimTime now);
  void run_process_scan(SimTime now);
  void emit(SimTime now, KnowledgeSourceId ks, ObjectId sensed,
            const rules::Diagnosis& d);
  void emit_raw(SimTime now, KnowledgeSourceId ks, ObjectId sensed,
                domain::FailureMode mode, double severity, double belief,
                std::string explanation, std::string recommendation,
                const std::vector<rules::PrognosticPoint>& prognosis);
  [[nodiscard]] ObjectId sensed_object_for(domain::FailureMode mode) const;
  [[nodiscard]] ObjectId object_for_channel(std::string_view channel) const;
  void emit_sensor_fault(SimTime now, const std::string& channel,
                         domain::SensorFaultKind kind, bool cleared);
  /// Validate one waveform acquisition; returns false when the channel is
  /// quarantined and its data must be withheld from the analyzers.
  bool validate_window(SimTime now, const std::string& channel,
                       std::span<const double> samples);
  void setup_database();
  /// Build the SBFR channel/mode tables; `add_machines` is false when the
  /// machines (with their latch state) arrived via Salvage.
  void setup_sbfr(bool add_machines = true);
  /// Register the scheduler tasks. For a fresh DC `resume_at` is zero and
  /// tasks first fire one period (plus any desync phase) from boot; for a
  /// recovered DC each task re-anchors on the first natural slot of its
  /// original phase strictly after `resume_at`, so the catch-up advance
  /// re-runs the swallowed tests at their original times.
  void register_tasks(SimTime resume_at);
  /// Apply one runtime setting; returns false (rejected) on unknown key or
  /// out-of-range value. `quiet` suppresses counters/persistence when
  /// re-applying the persisted config during recovery.
  bool apply_setting(std::string_view key, double value, bool quiet);
  void persist_setting(std::string_view key, double value);
  void reapply_persisted_config();

  DcConfig cfg_;
  MachineRefs refs_;
  plant::ChillerSimulator& chiller_;
  std::shared_ptr<nn::WnnClassifier> wnn_;

  EventScheduler scheduler_;
  EventScheduler::TaskId vibration_task_ = 0;
  EventScheduler::TaskId process_task_ = 0;
  EventScheduler::TaskId sweep_task_ = 0;
  bool has_sweep_task_ = false;
  EventScheduler::TaskId heartbeat_task_ = 0;
  bool has_heartbeat_task_ = false;
  db::Database db_;
  rules::BelievabilityTable beliefs_;
  rules::FeatureExtractor extractor_;
  rules::RuleEngine dli_;
  fuzzy::FuzzyDiagnoser fuzzy_;
  sbfr::SbfrSystem sbfr_;
  std::vector<std::string> sbfr_channel_keys_;  // process key per channel
  std::vector<domain::FailureMode> sbfr_machine_mode_;  // mode per machine

  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
           LastReport>
      last_reports_;  // (ks, object, condition) -> last emission

  telemetry::FlightRecorder* journal_ = nullptr;
  telemetry::TraceId current_trace_ = 0;  ///< stamped on emitted reports

  SensorValidator validator_;
  net::ReliableSender reliable_;
  net::ReliableReceiver command_rx_;  ///< PDME->DC command stream dedup
  std::uint64_t config_revision_ = 0;
  /// Settings persisted since the last drain_config_updates() pull.
  std::vector<std::pair<std::string, double>> pending_config_updates_;
  std::uint64_t progress_ = 0;
  bool wedged_ = false;
  std::vector<net::FailureReport> outbox_;
  std::vector<net::SensorDataMessage> sensor_outbox_;
  std::vector<WireDatagram> wire_outbox_;
  std::vector<double> vib_buffer_;
  std::vector<double> current_buffer_;
  Stats stats_;
};

}  // namespace mpros::dc
