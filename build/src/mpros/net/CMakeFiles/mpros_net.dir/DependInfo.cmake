
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpros/net/codec.cpp" "src/mpros/net/CMakeFiles/mpros_net.dir/codec.cpp.o" "gcc" "src/mpros/net/CMakeFiles/mpros_net.dir/codec.cpp.o.d"
  "/root/repo/src/mpros/net/messages.cpp" "src/mpros/net/CMakeFiles/mpros_net.dir/messages.cpp.o" "gcc" "src/mpros/net/CMakeFiles/mpros_net.dir/messages.cpp.o.d"
  "/root/repo/src/mpros/net/network.cpp" "src/mpros/net/CMakeFiles/mpros_net.dir/network.cpp.o" "gcc" "src/mpros/net/CMakeFiles/mpros_net.dir/network.cpp.o.d"
  "/root/repo/src/mpros/net/report.cpp" "src/mpros/net/CMakeFiles/mpros_net.dir/report.cpp.o" "gcc" "src/mpros/net/CMakeFiles/mpros_net.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpros/common/CMakeFiles/mpros_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/domain/CMakeFiles/mpros_domain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
