// Tests for the common substrate: clock, ids, ring buffer, queues, pool, rng.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "mpros/common/clock.hpp"
#include "mpros/common/concurrent_queue.hpp"
#include "mpros/common/ids.hpp"
#include "mpros/common/ring_buffer.hpp"
#include "mpros/common/rng.hpp"
#include "mpros/common/thread_pool.hpp"

namespace mpros {
namespace {

TEST(SimTimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(SimTime::from_seconds(1.0).micros(), 1'000'000);
  EXPECT_DOUBLE_EQ(SimTime::from_millis(250.0).seconds(), 0.25);
  EXPECT_DOUBLE_EQ(SimTime::from_hours(2.0).seconds(), 7200.0);
  EXPECT_DOUBLE_EQ(SimTime::from_days(3.0).hours(), 72.0);
  EXPECT_DOUBLE_EQ(SimTime::from_months(2.0).days(), 60.0);
}

TEST(SimTimeTest, ArithmeticAndComparison) {
  const SimTime a = SimTime::from_seconds(10.0);
  const SimTime b = SimTime::from_seconds(4.0);
  EXPECT_EQ((a + b).seconds(), 14.0);
  EXPECT_EQ((a - b).seconds(), 6.0);
  EXPECT_LT(b, a);
  EXPECT_EQ(a, SimTime::from_seconds(10.0));
}

TEST(SimTimeTest, ToStringPicksSensibleUnits) {
  EXPECT_EQ(to_string(SimTime::from_seconds(2.5)), "2.50s");
  EXPECT_EQ(to_string(SimTime::from_months(4.5)), "4.50mo");
  EXPECT_EQ(to_string(SimTime::from_millis(3.0)), "3.00ms");
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now().micros(), 0);
  clock.advance(SimTime::from_seconds(5.0));
  EXPECT_EQ(clock.now().seconds(), 5.0);
  clock.advance_to(SimTime::from_seconds(9.0));
  EXPECT_EQ(clock.now().seconds(), 9.0);
}

TEST(StrongIdTest, DistinctTypesAndHashing) {
  const DcId a(7), b(7), c(9);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(DcId().valid());
  std::set<DcId> ids{a, b, c};
  EXPECT_EQ(ids.size(), 2u);
}

TEST(RingBufferTest, OverwritesOldest) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  rb.push(4);  // evicts 1
  EXPECT_EQ(rb.at_oldest(0), 2);
  EXPECT_EQ(rb.at_oldest(2), 4);
  EXPECT_EQ(rb.at_newest(0), 4);
}

TEST(RingBufferTest, LatestCopiesInOrder) {
  RingBuffer<int> rb(4);
  for (int i = 1; i <= 6; ++i) rb.push(i);
  std::vector<int> out;
  rb.latest(3, out);
  EXPECT_EQ(out, (std::vector<int>{4, 5, 6}));
}

TEST(RingBufferTest, BatchPushAndClear) {
  RingBuffer<double> rb(8);
  const double vs[] = {1.0, 2.0, 3.0};
  rb.push(std::span<const double>(vs));
  EXPECT_EQ(rb.size(), 3u);
  rb.clear();
  EXPECT_TRUE(rb.empty());
}

TEST(ConcurrentQueueTest, FifoOrder) {
  ConcurrentQueue<int> q;
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(ConcurrentQueueTest, CloseWakesAndDrains) {
  ConcurrentQueue<int> q;
  q.push(42);
  q.close();
  EXPECT_FALSE(q.push(43));
  EXPECT_EQ(q.pop().value(), 42);  // drains before returning nullopt
  EXPECT_FALSE(q.pop().has_value());
}

TEST(ConcurrentQueueTest, ManyProducersOneConsumer) {
  ConcurrentQueue<int> q;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<std::jthread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; ++i) q.push(i);
    });
  }
  producers.clear();  // join
  q.close();
  int count = 0;
  while (q.pop().has_value()) ++count;
  EXPECT_EQ(count, kPerProducer * kProducers);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForUnevenChunksHitEveryIndexOnce) {
  // 67 indices across 8 workers does not divide evenly (8*8=64, so three
  // chunks carry an extra index); every index must still run exactly once.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(67);
  pool.parallel_for(67, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRangeSmallerThanPool) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeReturns) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng base(7);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.uniform(0, 1) != b.uniform(0, 1)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, NormalHasRoughlyCorrectMoments) {
  Rng rng(4242);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

}  // namespace
}  // namespace mpros
