file(REMOVE_RECURSE
  "CMakeFiles/mpros_nn.dir/classifier.cpp.o"
  "CMakeFiles/mpros_nn.dir/classifier.cpp.o.d"
  "CMakeFiles/mpros_nn.dir/layers.cpp.o"
  "CMakeFiles/mpros_nn.dir/layers.cpp.o.d"
  "CMakeFiles/mpros_nn.dir/network.cpp.o"
  "CMakeFiles/mpros_nn.dir/network.cpp.o.d"
  "libmpros_nn.a"
  "libmpros_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
