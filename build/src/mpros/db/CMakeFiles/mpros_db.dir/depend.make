# Empty dependencies file for mpros_db.
# This may be replaced when dependencies are built.
