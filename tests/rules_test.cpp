// DLI-substitute rule engine tests: clause semantics, gating (the paper's
// load-sensitized looseness rule), severity gradients (E11), believability,
// and detection of synthesized fault signatures.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "mpros/telemetry/metrics.hpp"

#include "mpros/plant/vibration.hpp"
#include "mpros/rules/believability.hpp"
#include "mpros/rules/dli_rules.hpp"
#include "mpros/rules/engine.hpp"
#include "mpros/rules/features.hpp"
#include "mpros/rules/severity.hpp"

namespace mpros::rules {
namespace {

using domain::FailureMode;

TEST(FeatureFrameTest, GetWithFallbackAndMaybe) {
  FeatureFrame f;
  f.set("a", 1.5);
  EXPECT_DOUBLE_EQ(f.get("a"), 1.5);
  EXPECT_DOUBLE_EQ(f.get("missing", -1.0), -1.0);
  EXPECT_FALSE(f.maybe("missing").has_value());
  EXPECT_TRUE(f.has("a"));
}

TEST(ClauseTest, UpwardRamp) {
  FeatureFrame f;
  const Clause c{"x", 1.0, 3.0, 1.0, false, std::nullopt, ""};
  f.set("x", 0.5);
  EXPECT_DOUBLE_EQ(*clause_evidence(c, f), 0.0);
  f.set("x", 2.0);
  EXPECT_DOUBLE_EQ(*clause_evidence(c, f), 0.5);
  f.set("x", 5.0);
  EXPECT_DOUBLE_EQ(*clause_evidence(c, f), 1.0);
}

TEST(ClauseTest, DownwardRampForLowIsBad) {
  // warn 200 -> alarm 100: oil pressure style.
  const Clause c{"p", 200.0, 100.0, 1.0, false, std::nullopt, ""};
  FeatureFrame f;
  f.set("p", 250.0);
  EXPECT_DOUBLE_EQ(*clause_evidence(c, f), 0.0);
  f.set("p", 150.0);
  EXPECT_DOUBLE_EQ(*clause_evidence(c, f), 0.5);
  f.set("p", 50.0);
  EXPECT_DOUBLE_EQ(*clause_evidence(c, f), 1.0);
}

TEST(ClauseTest, GateExcludesClause) {
  Clause c{"x", 0.0, 1.0, 1.0, false, Gate{"load", 0.3, 1.1}, ""};
  FeatureFrame f;
  f.set("x", 1.0);
  f.set("load", 0.1);
  EXPECT_FALSE(clause_evidence(c, f).has_value());
  f.set("load", 0.8);
  EXPECT_TRUE(clause_evidence(c, f).has_value());
}

TEST(ClauseTest, MissingFeatureAbstains) {
  const Clause c{"x", 0.0, 1.0, 1.0, false, std::nullopt, ""};
  FeatureFrame f;
  EXPECT_FALSE(clause_evidence(c, f).has_value());
}

TEST(RuleEngineTest, RequiredClauseBlocksWhenZero) {
  Rule r;
  r.mode = FailureMode::MotorImbalance;
  r.name = "test";
  r.clauses = {
      Clause{"must", 1.0, 2.0, 1.0, true, std::nullopt, "must"},
      Clause{"extra", 0.0, 1.0, 5.0, false, std::nullopt, "extra"},
  };
  RuleEngine engine({r});
  BelievabilityTable beliefs;

  FeatureFrame f;
  f.set("must", 0.5);   // below warn -> zero evidence on required clause
  f.set("extra", 1.0);  // strong but not enough alone
  EXPECT_TRUE(engine.evaluate(f, beliefs).empty());

  f.set("must", 1.8);
  EXPECT_FALSE(engine.evaluate(f, beliefs).empty());
}

TEST(RuleEngineTest, LoadGateSuppressesLoosenessAtLowLoad) {
  // The paper's flagship example (§6.1): no looseness call at low load.
  RuleEngine engine(chiller_rulebase());
  BelievabilityTable beliefs;

  FeatureFrame f;
  f.set(feat::kSubharmonics, 0.4);     // screaming looseness signature
  f.set(feat::kHarmonicSeries, 0.8);
  f.set(feat::kLoad, 0.05);            // ...but the machine is unloaded

  for (const Diagnosis& d : engine.evaluate(f, beliefs)) {
    EXPECT_NE(d.mode, FailureMode::BearingHousingLooseness);
  }

  f.set(feat::kLoad, 0.9);
  bool found = false;
  for (const Diagnosis& d : engine.evaluate(f, beliefs)) {
    if (d.mode == FailureMode::BearingHousingLooseness) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RuleEngineTest, DiagnosesSortedBySeverity) {
  RuleEngine engine(chiller_rulebase());
  BelievabilityTable beliefs;
  FeatureFrame f;
  f.set(feat::kLoad, 0.9);
  f.set(feat::kOrder1, 0.5);   // extreme imbalance
  f.set(feat::kOrder2, 0.18);  // moderate misalignment
  f.set(feat::kOrder3, 0.06);
  const auto diagnoses = engine.evaluate(f, beliefs);
  ASSERT_GE(diagnoses.size(), 2u);
  for (std::size_t i = 1; i < diagnoses.size(); ++i) {
    EXPECT_GE(diagnoses[i - 1].severity, diagnoses[i].severity);
  }
  EXPECT_EQ(diagnoses[0].mode, FailureMode::MotorImbalance);
}

// --- Severity gradients (E11) ----------------------------------------------

TEST(SeverityTest, GradientBoundaries) {
  EXPECT_EQ(gradient_of(0.05), Gradient::None);
  EXPECT_EQ(gradient_of(0.25), Gradient::Slight);
  EXPECT_EQ(gradient_of(0.45), Gradient::Moderate);
  EXPECT_EQ(gradient_of(0.70), Gradient::Serious);
  EXPECT_EQ(gradient_of(0.95), Gradient::Extreme);
}

TEST(SeverityTest, GradientToTimeToFailureShape) {
  // §6.1: Slight/Moderate/Serious/Extreme = no foreseeable failure /
  // months / weeks / days.
  EXPECT_TRUE(default_prognosis(0.05).empty());

  const auto at_90 = [](double severity) {
    const auto prog = default_prognosis(severity);
    for (const PrognosticPoint& p : prog) {
      if (p.probability >= 0.9) return p.horizon;
    }
    return prog.empty() ? SimTime(0) : prog.back().horizon;
  };
  const SimTime moderate = at_90(0.5);
  const SimTime serious = at_90(0.7);
  const SimTime extreme = at_90(0.9);
  EXPECT_GT(moderate.days(), 60.0);              // months
  EXPECT_GT(serious.days(), 7.0);                // weeks
  EXPECT_LT(serious.days(), moderate.days());
  EXPECT_LE(extreme.days(), 7.0);                // days
  EXPECT_LT(extreme.days(), serious.days());
}

TEST(SeverityTest, HigherScoreWithinBandPredictsEarlier) {
  const auto first_horizon = [](double severity) {
    return default_prognosis(severity).front().horizon;
  };
  EXPECT_LE(first_horizon(0.78).micros(), first_horizon(0.62).micros());
}

TEST(SeverityTest, PrognosisProbabilitiesMonotone) {
  for (const double s : {0.25, 0.5, 0.7, 0.9}) {
    const auto prog = default_prognosis(s);
    for (std::size_t i = 1; i < prog.size(); ++i) {
      EXPECT_GE(prog[i].probability, prog[i - 1].probability);
      EXPECT_GT(prog[i].horizon, prog[i - 1].horizon);
    }
  }
}

// --- Believability (§6.1) ---------------------------------------------------

TEST(BelievabilityTest, PriorEncodes95PercentAgreement) {
  const BelievabilityTable t;
  EXPECT_NEAR(t.belief(FailureMode::MotorImbalance), 0.95, 1e-9);
}

TEST(BelievabilityTest, ReversalsLowerBelief) {
  BelievabilityTable t;
  for (int i = 0; i < 10; ++i) t.record_reversal(FailureMode::GearMeshWear);
  EXPECT_LT(t.belief(FailureMode::GearMeshWear), 0.70);
  // Other modes unaffected.
  EXPECT_NEAR(t.belief(FailureMode::MotorImbalance), 0.95, 1e-9);
}

TEST(BelievabilityTest, ConfirmationsRaiseBelief) {
  BelievabilityTable t(1.0, 1.0);  // weak prior
  for (int i = 0; i < 50; ++i) {
    t.record_confirmation(FailureMode::PumpCavitation);
  }
  EXPECT_GT(t.belief(FailureMode::PumpCavitation), 0.9);
}

// --- Synthesized-signature detection ----------------------------------------

class SignatureDetectionTest
    : public ::testing::TestWithParam<FailureMode> {
 protected:
  static constexpr double kRate = 40960.0;
  static constexpr std::size_t kWindow = 8192;
};

TEST_P(SignatureDetectionTest, FullSeverityFaultFiresItsRule) {
  const FailureMode mode = GetParam();
  plant::VibrationSynthesizer synth(domain::navy_chiller_signature(), 77);
  plant::Severities severities{};
  severities[static_cast<std::size_t>(mode)] = 0.9;

  // Sense at the point that owns the fault.
  plant::MachinePoint point = plant::MachinePoint::Motor;
  if (mode == FailureMode::GearMeshWear) point = plant::MachinePoint::Gearbox;
  if (mode == FailureMode::CompressorBearingWear ||
      mode == FailureMode::BearingHousingLooseness ||
      mode == FailureMode::PumpCavitation) {
    point = plant::MachinePoint::Compressor;
  }

  std::vector<double> waveform(kWindow);
  synth.acceleration(point, severities, 0.85, 0.0, kRate, waveform);

  FeatureExtractor extractor(domain::navy_chiller_signature());
  FeatureFrame frame;
  extractor.extract_vibration(waveform, kRate, frame);
  frame.set(feat::kLoad, 0.85);
  if (mode == FailureMode::RotorBarDefect) {
    std::vector<double> current(kWindow);
    synth.motor_current(severities, 0.85, 0.0, kRate, current);
    extractor.extract_current(current, kRate, 0.85, frame);
  }

  RuleEngine engine(chiller_rulebase());
  BelievabilityTable beliefs;
  bool fired = false;
  for (const Diagnosis& d : engine.evaluate(frame, beliefs)) {
    if (d.mode == mode) {
      fired = true;
      EXPECT_GE(d.severity, 0.2);
      EXPECT_FALSE(d.explanation.empty());
      EXPECT_FALSE(d.prognosis.empty());
    }
  }
  EXPECT_TRUE(fired) << "rule for " << domain::to_string(mode)
                     << " did not fire";
}

INSTANTIATE_TEST_SUITE_P(
    VibrationModes, SignatureDetectionTest,
    ::testing::Values(FailureMode::MotorImbalance,
                      FailureMode::ShaftMisalignment,
                      FailureMode::BearingHousingLooseness,
                      FailureMode::RotorBarDefect,
                      FailureMode::MotorBearingWear,
                      FailureMode::CompressorBearingWear,
                      FailureMode::GearMeshWear,
                      FailureMode::PumpCavitation),
    [](const auto& inst) { return domain::to_string(inst.param); });

TEST(FeatureExtractionTest, FrameBitwiseStableAcrossRepeatedCalls) {
  // The cached-plan / scratch-arena DSP path must be deterministic: the same
  // waveform through the same extractor yields bit-identical features, call
  // after call (ISSUE 2 acceptance).
  constexpr double kRate = 40960.0;
  plant::VibrationSynthesizer synth(domain::navy_chiller_signature(), 91);
  plant::Severities severities{};
  severities[static_cast<std::size_t>(FailureMode::MotorBearingWear)] = 0.6;
  std::vector<double> waveform(8192);
  synth.acceleration(plant::MachinePoint::Motor, severities, 0.8, 0.0, kRate,
                     waveform);

  FeatureExtractor extractor(domain::navy_chiller_signature());
  FeatureFrame first;
  extractor.extract_vibration(waveform, kRate, first);
  ASSERT_GT(first.size(), 0u);

  for (int pass = 0; pass < 3; ++pass) {
    FeatureFrame again;
    extractor.extract_vibration(waveform, kRate, again);
    ASSERT_EQ(again.size(), first.size());
    for (const auto& [key, value] : first.all()) {
      const auto got = again.maybe(key);
      ASSERT_TRUE(got.has_value()) << key;
      EXPECT_EQ(*got, value) << key << " drifted on pass " << pass;
    }
  }
}

TEST(FeatureExtractionTest, FrameBitwiseStableAcrossThreads) {
  // Each thread owns its own scratch arena; results must not depend on which
  // thread runs the extraction or on how warm its caches are.
  constexpr double kRate = 40960.0;
  plant::VibrationSynthesizer synth(domain::navy_chiller_signature(), 92);
  std::vector<double> waveform(8192);
  synth.acceleration(plant::MachinePoint::Compressor, plant::Severities{},
                     0.85, 0.0, kRate, waveform);

  FeatureExtractor extractor(domain::navy_chiller_signature());
  FeatureFrame reference;
  extractor.extract_vibration(waveform, kRate, reference);

  constexpr int kThreads = 4;
  std::vector<FeatureFrame> frames(kThreads);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Two extractions per thread: the first on a cold per-thread arena,
        // the second fully warm — both must match the reference.
        FeatureFrame cold;
        extractor.extract_vibration(waveform, kRate, cold);
        frames[static_cast<std::size_t>(t)] = std::move(cold);
        extractor.extract_vibration(waveform, kRate,
                                    frames[static_cast<std::size_t>(t)]);
      });
    }
  }
  for (const FeatureFrame& frame : frames) {
    ASSERT_EQ(frame.size(), reference.size());
    for (const auto& [key, value] : reference.all()) {
      const auto got = frame.maybe(key);
      ASSERT_TRUE(got.has_value()) << key;
      EXPECT_EQ(*got, value) << key;
    }
  }
}

TEST(SignatureDetectionTest, HealthyMachineFiresNothingVibrational) {
  plant::VibrationSynthesizer synth(domain::navy_chiller_signature(), 78);
  std::vector<double> waveform(8192);
  synth.acceleration(plant::MachinePoint::Motor, plant::Severities{}, 0.85,
                     0.0, 40960.0, waveform);

  FeatureExtractor extractor(domain::navy_chiller_signature());
  FeatureFrame frame;
  extractor.extract_vibration(waveform, 40960.0, frame);
  frame.set(feat::kLoad, 0.85);

  RuleEngine engine(chiller_rulebase());
  BelievabilityTable beliefs;
  EXPECT_TRUE(engine.evaluate(frame, beliefs).empty());
}

TEST(FeatureFrameTest, RefusesNonFiniteValuesAndCounts) {
  auto& nonfinite =
      telemetry::Registry::instance().counter("rules.nonfinite_inputs");
  const std::uint64_t before = nonfinite.value();

  FeatureFrame f;
  f.set("nan", std::numeric_limits<double>::quiet_NaN());
  f.set("inf", std::numeric_limits<double>::infinity());
  f.set("neg_inf", -std::numeric_limits<double>::infinity());
  f.set("fine", 2.0);

  // Poisoned features read as "unmeasured" so clauses abstain on them.
  EXPECT_EQ(f.size(), 1u);
  EXPECT_FALSE(f.has("nan"));
  EXPECT_FALSE(f.maybe("inf").has_value());
  EXPECT_DOUBLE_EQ(f.get("fine"), 2.0);
  EXPECT_EQ(nonfinite.value(), before + 3);
}

TEST(RuleEngineTest, NonFiniteFeatureNeverBecomesDiagnosis) {
  // A NaN where the 1x amplitude should be must read as "not measured":
  // the imbalance rule abstains instead of producing a NaN-severity report.
  FeatureFrame poisoned;
  poisoned.set(feat::kOrder1, std::numeric_limits<double>::quiet_NaN());
  RuleEngine engine(chiller_rulebase());
  BelievabilityTable beliefs;
  for (const Diagnosis& d : engine.evaluate(poisoned, beliefs)) {
    EXPECT_TRUE(std::isfinite(d.severity));
    EXPECT_TRUE(std::isfinite(d.belief));
  }
}

}  // namespace
}  // namespace mpros::rules
