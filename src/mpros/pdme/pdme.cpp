#include "mpros/pdme/pdme.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "mpros/common/assert.hpp"
#include "mpros/common/log.hpp"
#include "mpros/telemetry/metrics.hpp"
#include "mpros/telemetry/trace.hpp"

namespace mpros::pdme {

using domain::FailureMode;

namespace {

/// Registry handles resolved once; observations are relaxed atomics after.
struct PdmeMetrics {
  telemetry::Counter& reports_accepted;
  telemetry::Counter& duplicates_dropped;
  telemetry::Counter& malformed_dropped;
  telemetry::Counter& fusion_updates;
  telemetry::Counter& gaps_detected;
  telemetry::Counter& heartbeats_received;
  telemetry::Counter& sensor_fault_reports;
  telemetry::Histogram& fuse_wall_us;
  telemetry::Histogram& report_pipeline_latency_us;

  static PdmeMetrics& instance() {
    static auto& reg = telemetry::Registry::instance();
    static PdmeMetrics m{
        reg.counter("pdme.reports_accepted"),
        reg.counter("pdme.duplicates_dropped"),
        reg.counter("pdme.malformed_dropped"),
        reg.counter("pdme.fusion_updates"),
        reg.counter("pdme.gaps_detected"),
        reg.counter("pdme.heartbeats_received"),
        reg.counter("pdme.sensor_fault_reports"),
        reg.histogram("pdme.fuse_wall_us"),
        reg.histogram("pdme.report_pipeline_latency_us")};
    return m;
  }
};

std::string encode_prognostics(const std::vector<net::PrognosticPair>& v) {
  std::string out;
  char buf[64];
  for (const net::PrognosticPair& p : v) {
    std::snprintf(buf, sizeof buf, "%.17g:%.17g;", p.probability,
                  p.time_seconds);
    out += buf;
  }
  return out;
}

std::vector<net::PrognosticPair> decode_prognostics(const std::string& s) {
  std::vector<net::PrognosticPair> out;
  std::istringstream in(s);
  std::string token;
  while (std::getline(in, token, ';')) {
    if (token.empty()) continue;
    net::PrognosticPair p;
    if (std::sscanf(token.c_str(), "%lg:%lg", &p.probability,
                    &p.time_seconds) == 2) {
      out.push_back(p);
    }
  }
  return out;
}

fusion::PrognosticVector to_vector(
    const std::vector<net::PrognosticPair>& pairs) {
  std::vector<fusion::PrognosticPoint> points;
  points.reserve(pairs.size());
  for (const net::PrognosticPair& p : pairs) {
    points.push_back(
        {SimTime::from_seconds(p.time_seconds), p.probability});
  }
  return fusion::PrognosticVector(std::move(points));
}

}  // namespace

const char* to_string(DcLiveness liveness) {
  switch (liveness) {
    case DcLiveness::Alive: return "Alive";
    case DcLiveness::Stale: return "Stale";
    case DcLiveness::Lost: return "Lost";
  }
  return "?";
}

PdmeExecutive::PdmeExecutive(oosm::ObjectModel& model, PdmeConfig cfg)
    : model_(model), cfg_(cfg) {
  subscription_ = model_.subscribe(
      [this](const oosm::OosmEvent& event) { on_oosm_event(event); });
}

PdmeExecutive::~PdmeExecutive() { model_.unsubscribe(subscription_); }

std::string PdmeExecutive::signature_of(const net::FailureReport& r) const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%llu/%llu/%llu/%llu/%lld/%.6f",
                static_cast<unsigned long long>(r.dc.value()),
                static_cast<unsigned long long>(r.knowledge_source.value()),
                static_cast<unsigned long long>(r.sensed_object.value()),
                static_cast<unsigned long long>(r.machine_condition.value()),
                static_cast<long long>(r.timestamp.micros()), r.belief);
  return buf;
}

std::optional<ObjectId> PdmeExecutive::accept(
    const net::FailureReport& report) {
  if (cfg_.deduplicate) {
    const std::string sig = signature_of(report);
    if (!seen_signatures_.insert(sig).second) {
      ++stats_.duplicates_dropped;
      PdmeMetrics::instance().duplicates_dropped.inc();
      return std::nullopt;
    }
  }
  return post_report_object(report);
}

ObjectId PdmeExecutive::post_report_object(const net::FailureReport& r) {
  posting_ = true;
  const ObjectId obj = model_.create_object(
      "Report " + std::to_string(r.machine_condition.value()) + " on " +
          std::to_string(r.sensed_object.value()),
      domain::EquipmentKind::Report);
  model_.set_property(obj, "dc", static_cast<std::int64_t>(r.dc.value()));
  model_.set_property(obj, "ks",
                      static_cast<std::int64_t>(r.knowledge_source.value()));
  model_.set_property(obj, "sensed",
                      static_cast<std::int64_t>(r.sensed_object.value()));
  model_.set_property(obj, "condition",
                      static_cast<std::int64_t>(r.machine_condition.value()));
  model_.set_property(obj, "severity", r.severity);
  model_.set_property(obj, "belief", r.belief);
  model_.set_property(obj, "explanation", r.explanation);
  model_.set_property(obj, "recommendations", r.recommendations);
  model_.set_property(obj, "timestamp_us", r.timestamp.micros());
  model_.set_property(obj, "prognostics", encode_prognostics(r.prognostics));
  if (r.trace != 0) {
    model_.set_property(obj, "trace",
                        static_cast<std::int64_t>(r.trace));
  }
  if (model_.exists(r.sensed_object)) {
    model_.relate(obj, oosm::Relation::RefersTo, r.sensed_object);
  }
  posting_ = false;
  // The completion marker: fusion triggers off this property event, so
  // third parties posting report objects by hand use the same contract.
  model_.set_property(obj, "posted", std::int64_t{1});
  return obj;
}

net::FailureReport PdmeExecutive::reconstruct_report(ObjectId object) const {
  // Reconstruct the report from OOSM properties (§4.5: fusion reacts to the
  // model, not to a private channel).
  const auto get_int = [&](const char* key) -> std::int64_t {
    const auto v = model_.property(object, key);
    MPROS_ASSERT(v.has_value());
    return v->as_integer();
  };
  const auto get_real = [&](const char* key) -> double {
    const auto v = model_.property(object, key);
    MPROS_ASSERT(v.has_value());
    return v->numeric();
  };
  const auto get_text = [&](const char* key) -> std::string {
    const auto v = model_.property(object, key);
    return v.has_value() && v->type() == db::ValueType::Text ? v->as_text()
                                                             : std::string();
  };

  net::FailureReport r;
  r.dc = DcId(static_cast<std::uint64_t>(get_int("dc")));
  r.knowledge_source =
      KnowledgeSourceId(static_cast<std::uint64_t>(get_int("ks")));
  r.sensed_object = ObjectId(static_cast<std::uint64_t>(get_int("sensed")));
  r.machine_condition =
      ConditionId(static_cast<std::uint64_t>(get_int("condition")));
  r.severity = get_real("severity");
  r.belief = get_real("belief");
  r.explanation = get_text("explanation");
  r.recommendations = get_text("recommendations");
  r.timestamp = SimTime(get_int("timestamp_us"));
  r.prognostics = decode_prognostics(get_text("prognostics"));
  // Reports posted by third parties predate tracing; default to untraced.
  const auto trace = model_.property(object, "trace");
  if (trace.has_value()) {
    r.trace = static_cast<std::uint64_t>(trace->as_integer());
  }
  return r;
}

void PdmeExecutive::on_oosm_event(const oosm::OosmEvent& event) {
  if (posting_) return;  // wait for the completion marker
  if (event.kind != oosm::OosmEvent::Kind::PropertyChanged ||
      event.property != "posted") {
    return;
  }
  if (!model_.exists(event.object) ||
      model_.kind(event.object) != domain::EquipmentKind::Report) {
    return;
  }
  fuse(reconstruct_report(event.object));
}

std::size_t PdmeExecutive::rebuild_from_model() {
  std::vector<net::FailureReport> recovered;
  for (const ObjectId obj :
       model_.objects_of_kind(domain::EquipmentKind::Report)) {
    const auto posted = model_.property(obj, "posted");
    if (!posted.has_value()) continue;  // half-written report: skip
    recovered.push_back(reconstruct_report(obj));
  }
  std::sort(recovered.begin(), recovered.end(),
            [](const net::FailureReport& a, const net::FailureReport& b) {
              return a.timestamp < b.timestamp;
            });
  for (const net::FailureReport& r : recovered) {
    if (cfg_.deduplicate) seen_signatures_.insert(signature_of(r));
    fuse(r);
  }
  return recovered.size();
}

void PdmeExecutive::fuse(const net::FailureReport& r) {
  PdmeMetrics& metrics = PdmeMetrics::instance();
  // Sensor-fault conclusions get their own track: fusing "the sensor lies"
  // into Dempster-Shafer would steal mass from real machinery modes.
  if (domain::is_sensor_fault_condition(r.machine_condition)) {
    note_sensor_fault(r);
    return;
  }
  if (!r.machine_condition.valid() ||
      r.machine_condition.value() > domain::kFailureModeCount) {
    ++stats_.malformed_dropped;
    metrics.malformed_dropped.inc();
    return;
  }
  telemetry::StageTimer span("pdme.fuse", r.trace, r.timestamp.micros(),
                             &metrics.fuse_wall_us);
  const FailureMode mode = domain::failure_mode(r.machine_condition);

  ++stats_.reports_accepted;
  metrics.reports_accepted.inc();
  reports_[r.sensed_object.value()].push_back(r);

  // Diagnostic fusion: the report's Belief field becomes simple support.
  diagnostics_.update(r.sensed_object, mode,
                      std::clamp(r.belief, 0.0, 1.0));

  // Prognostic fusion: conservative envelope per (machine, mode) (§5.4).
  ModeTrack& track = tracks_[ModeKey{r.sensed_object.value(), mode}];
  if (!r.prognostics.empty()) {
    track.fused_prognosis =
        fuse_conservative(track.fused_prognosis, to_vector(r.prognostics));
  }
  track.max_severity = std::max(track.max_severity, r.severity);
  track.trend.observe(r.timestamp, std::clamp(r.severity, 0.0, 1.0));
  track.latest_report = std::max(track.latest_report, r.timestamp);
  ++track.reports;
  ++stats_.fusion_updates;
  metrics.fusion_updates.inc();
  maybe_command_retest(r);

  MPROS_LOG_DEBUG("pdme", "fused %s for obj=%llu belief=%.2f",
                  domain::to_string(mode),
                  static_cast<unsigned long long>(r.sensed_object.value()),
                  r.belief);
}

void PdmeExecutive::note_sensor_fault(const net::FailureReport& r) {
  PdmeMetrics& metrics = PdmeMetrics::instance();
  ++stats_.reports_accepted;
  metrics.reports_accepted.inc();
  ++stats_.sensor_fault_reports;
  metrics.sensor_fault_reports.inc();
  reports_[r.sensed_object.value()].push_back(r);

  const domain::SensorFaultKind kind =
      domain::sensor_fault_kind(r.machine_condition);
  SensorFaultRecord& rec = sensor_faults_[{
      r.dc.value(), r.sensed_object.value(),
      static_cast<std::uint64_t>(kind)}];
  if (rec.at.micros() > r.timestamp.micros()) return;  // stale arrival
  rec.dc = r.dc;
  rec.object = r.sensed_object;
  rec.kind = kind;
  rec.severity = r.severity;
  rec.at = r.timestamp;
  rec.explanation = r.explanation;
  if (r.severity > 0.0) {
    MPROS_LOG_WARN("pdme", "sensor fault from dc-%llu: %s",
                   static_cast<unsigned long long>(r.dc.value()),
                   r.explanation.c_str());
  }
}

std::vector<PdmeExecutive::SensorFaultRecord> PdmeExecutive::sensor_faults(
    bool active_only) const {
  std::vector<SensorFaultRecord> out;
  for (const auto& [key, rec] : sensor_faults_) {
    if (!active_only || rec.severity > 0.0) out.push_back(rec);
  }
  return out;
}

void PdmeExecutive::expect_dc(DcId dc, SimTime since) {
  DcHealth& h = dc_health_[dc.value()];
  h.last_heard = std::max(h.last_heard, since);
}

void PdmeExecutive::note_dc_alive(DcId dc, SimTime at) {
  DcHealth& h = dc_health_[dc.value()];
  h.last_heard = std::max(h.last_heard, at);
  if (h.liveness != DcLiveness::Alive) {
    MPROS_LOG_INFO("pdme", "dc-%llu recovered (%s -> Alive)",
                   static_cast<unsigned long long>(dc.value()),
                   to_string(h.liveness));
    h.liveness = DcLiveness::Alive;
    ++stats_.liveness_transitions;
  }
}

void PdmeExecutive::accept(const net::HeartbeatMessage& hb, SimTime at) {
  PdmeMetrics& metrics = PdmeMetrics::instance();
  note_dc_alive(hb.dc, at);
  ++stats_.heartbeats_received;
  metrics.heartbeats_received.inc();
  ++dc_health_[hb.dc.value()].heartbeats;
  // The advertised newest sequence reveals tail loss: gaps with no later
  // envelope arrival to expose them.
  const std::uint64_t tail_gaps =
      receiver_.on_advertised(hb.dc, hb.last_sequence);
  stats_.gaps_detected += tail_gaps;
  if (tail_gaps > 0) metrics.gaps_detected.inc(tail_gaps);
}

void PdmeExecutive::update_liveness(SimTime now) {
  MPROS_EXPECTS(cfg_.heartbeat_interval.micros() > 0);
  for (auto& [dc, h] : dc_health_) {
    const SimTime silent = now - h.last_heard;
    const auto missed = static_cast<std::size_t>(
        silent.micros() / cfg_.heartbeat_interval.micros());
    DcLiveness verdict = DcLiveness::Alive;
    if (missed >= cfg_.lost_after_missed) {
      verdict = DcLiveness::Lost;
    } else if (missed >= cfg_.stale_after_missed) {
      verdict = DcLiveness::Stale;
    }
    if (verdict != h.liveness) {
      // Watchdog only degrades; note_dc_alive handles recovery.
      if (verdict > h.liveness) {
        MPROS_LOG_WARN(
            "pdme", "dc-%llu %s -> %s: no data for %.0f s (%zu intervals)",
            static_cast<unsigned long long>(dc), to_string(h.liveness),
            to_string(verdict), silent.seconds(), missed);
        h.liveness = verdict;
        ++stats_.liveness_transitions;
      }
    }
  }
}

DcLiveness PdmeExecutive::dc_liveness(DcId dc) const {
  const auto it = dc_health_.find(dc.value());
  return it == dc_health_.end() ? DcLiveness::Alive : it->second.liveness;
}

std::vector<MaintenanceItem> PdmeExecutive::prioritized_list() const {
  std::vector<MaintenanceItem> items;
  std::set<std::uint64_t> machines;
  for (const auto& [key, track] : tracks_) machines.insert(key.machine);
  for (const std::uint64_t m : machines) {
    const auto per_machine = prioritized_list(ObjectId(m));
    items.insert(items.end(), per_machine.begin(), per_machine.end());
  }
  std::sort(items.begin(), items.end(),
            [](const MaintenanceItem& a, const MaintenanceItem& b) {
              return a.priority > b.priority;
            });
  return items;
}

std::vector<MaintenanceItem> PdmeExecutive::prioritized_list(
    ObjectId machine) const {
  std::vector<MaintenanceItem> items;
  for (const fusion::GroupState& gs : diagnostics_.states(machine)) {
    for (const fusion::ModeBelief& mb : gs.modes) {
      if (mb.belief <= 1e-9) continue;
      MaintenanceItem item;
      item.machine = machine;
      item.mode = mb.mode;
      item.fused_belief = mb.belief;
      item.plausibility = mb.plausibility;
      item.report_count = gs.report_count;

      const auto track =
          tracks_.find(ModeKey{machine.value(), mb.mode});
      if (track != tracks_.end()) {
        item.max_severity = track->second.max_severity;
        if (!track->second.fused_prognosis.empty()) {
          item.median_ttf =
              track->second.fused_prognosis.time_to_probability(0.5);
          item.p90_ttf =
              track->second.fused_prognosis.time_to_probability(0.9);
        }
        item.trend_ttf =
            track->second.trend.time_to_failure(track->second.latest_report);
      }
      item.priority = item.fused_belief * std::max(0.1, item.max_severity);
      items.push_back(item);
    }
  }
  std::sort(items.begin(), items.end(),
            [](const MaintenanceItem& a, const MaintenanceItem& b) {
              return a.priority > b.priority;
            });
  return items;
}

std::optional<fusion::PrognosticVector> PdmeExecutive::prognosis(
    ObjectId machine, FailureMode mode) const {
  const auto it = tracks_.find(ModeKey{machine.value(), mode});
  if (it == tracks_.end() || it->second.fused_prognosis.empty()) {
    return std::nullopt;
  }
  return it->second.fused_prognosis;
}

fusion::PrognosticVector PdmeExecutive::trend_prognosis(
    ObjectId machine, FailureMode mode) const {
  const auto it = tracks_.find(ModeKey{machine.value(), mode});
  if (it == tracks_.end()) return fusion::PrognosticVector{};
  return it->second.trend.project(it->second.latest_report);
}

std::vector<net::FailureReport> PdmeExecutive::reports_for(
    ObjectId machine) const {
  const auto it = reports_.find(machine.value());
  return it == reports_.end() ? std::vector<net::FailureReport>{}
                              : it->second;
}

void PdmeExecutive::attach_to_network(net::SimNetwork& network,
                                      const std::string& endpoint_name) {
  network_ = &network;
  endpoint_name_ = endpoint_name;
  network.register_endpoint(
      endpoint_name, [this](const net::Message& message) {
        PdmeMetrics& metrics = PdmeMetrics::instance();
        // The wire is hostile (fault injection, §5.1 "fragmentary" inputs):
        // everything decodes through the fail-soft path, and a datagram
        // that does not parse is counted and dropped, never fatal.
        const auto type = net::try_peek_type(message.payload);
        if (!type.has_value()) {
          ++stats_.malformed_dropped;
          metrics.malformed_dropped.inc();
          return;
        }
        switch (*type) {
          case net::MessageType::FailureReportMsg: {
            const auto report = net::try_unwrap_report(message.payload);
            if (!report.has_value()) {
              ++stats_.malformed_dropped;
              metrics.malformed_dropped.inc();
              return;
            }
            telemetry::StageTimer transit("net.transit", report->trace,
                                          message.sent_at.micros());
            transit.set_sim_end(message.delivered_at.micros());
            metrics.report_pipeline_latency_us.observe(static_cast<double>(
                (message.delivered_at - report->timestamp).micros()));
            note_dc_alive(report->dc, message.delivered_at);
            accept(*report);
            break;
          }
          case net::MessageType::ReportEnvelopeMsg: {
            const auto env = net::try_unwrap_envelope(message.payload);
            if (!env.has_value()) {
              ++stats_.malformed_dropped;
              metrics.malformed_dropped.inc();
              return;
            }
            note_dc_alive(env->dc, message.delivered_at);
            const net::ReliableReceiver::Outcome outcome =
                receiver_.on_envelope(env->dc, env->sequence);
            stats_.gaps_detected += outcome.new_gaps;
            if (outcome.new_gaps > 0) {
              metrics.gaps_detected.inc(outcome.new_gaps);
            }
            // Ack everything, duplicates included — the retransmission may
            // mean our previous ack was the datagram that got lost.
            if (network_ != nullptr) {
              network_->send(endpoint_name_,
                             "dc-" + std::to_string(env->dc.value()),
                             net::wrap(outcome.ack), message.delivered_at);
              ++stats_.acks_sent;
            }
            if (outcome.duplicate) {
              ++stats_.duplicates_dropped;
              metrics.duplicates_dropped.inc();
              return;
            }
            ++stats_.envelopes_accepted;
            telemetry::StageTimer transit("net.transit", env->report.trace,
                                          message.sent_at.micros());
            transit.set_sim_end(message.delivered_at.micros());
            metrics.report_pipeline_latency_us.observe(static_cast<double>(
                (message.delivered_at - env->report.timestamp).micros()));
            accept(env->report);
            break;
          }
          case net::MessageType::Heartbeat: {
            const auto hb = net::try_unwrap_heartbeat(message.payload);
            if (!hb.has_value()) {
              ++stats_.malformed_dropped;
              metrics.malformed_dropped.inc();
              return;
            }
            accept(*hb, message.delivered_at);
            break;
          }
          case net::MessageType::SensorData: {
            const auto data = net::try_unwrap_sensor_data(message.payload);
            if (!data.has_value()) {
              ++stats_.malformed_dropped;
              metrics.malformed_dropped.inc();
              return;
            }
            note_dc_alive(data->dc, message.delivered_at);
            accept(*data);
            break;
          }
          case net::MessageType::TestCommand:
          case net::MessageType::Ack:
            break;  // these address DCs, not the PDME
        }
      });
}

void PdmeExecutive::accept(const net::SensorDataMessage& data) {
  ++stats_.sensor_batches;
  if (!model_.exists(data.machine)) return;
  posting_ = true;  // raw telemetry is not a report; skip fusion triggers
  for (const auto& [key, value] : data.values) {
    model_.set_property(data.machine, key, value);
  }
  model_.set_property(data.machine, "last_sensor_update_us",
                      data.timestamp.micros());
  posting_ = false;
}

void PdmeExecutive::maybe_command_retest(const net::FailureReport& r) {
  if (!cfg_.auto_retest || network_ == nullptr) return;
  if (r.severity < cfg_.retest_severity) return;
  const FailureMode mode = domain::failure_mode(r.machine_condition);
  const fusion::GroupState group =
      diagnostics_.state(r.sensed_object, domain::logical_group(mode));
  // Already corroborated: several reports and little unknown mass left. A
  // first-ever severe report always earns a closer look, however confident
  // its source was.
  if (group.report_count > 1 && group.unknown < cfg_.retest_unknown) return;

  const ModeKey key{r.sensed_object.value(), mode};
  const auto last = last_retest_.find(key);
  if (last != last_retest_.end() &&
      r.timestamp - last->second < cfg_.retest_backoff) {
    return;
  }
  last_retest_[key] = r.timestamp;

  net::TestCommandMessage cmd;
  cmd.target = r.dc;
  cmd.command = net::TestCommandMessage::Command::VibrationTest;
  cmd.reason = "PDME closer-look: " + domain::condition_text(mode);
  network_->send(endpoint_name_, "dc-" + std::to_string(r.dc.value()),
                 net::wrap(cmd), r.timestamp);
  ++stats_.retests_commanded;
}

void PdmeExecutive::reset_machine(ObjectId machine) {
  diagnostics_.reset(machine);
  reports_.erase(machine.value());
  for (auto it = tracks_.begin(); it != tracks_.end();) {
    if (it->first.machine == machine.value()) {
      it = tracks_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace mpros::pdme
