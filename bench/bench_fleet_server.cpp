// E19 — Shore-side fleet tier: wait-free reads under ingest (ISSUE 6).
//
// The FleetServer's read path is epoch-gated: a hot reader pins one
// immutable snapshot and polls a plain atomic epoch, reloading the
// shared_ptr only when the merge barrier actually published (see
// FleetServer::refresh). Ingest and the merge barrier serialize on a
// private mutex readers never touch. This harness sweeps concurrent
// readers (1 -> 1000) while 128 ships continuously ingest summaries
// through accept() + publish(), and records aggregate read throughput.
// Acceptance: reader throughput stays flat (+-10%) across the sweep —
// the thousands-of-readers story costs the ingest path nothing.
//
// Writes BENCH_FLEETTIER.json at the current working directory (run from
// the repo root to refresh the committed snapshot).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mpros/fleet/fleet_server.hpp"
#include "mpros/net/fleet_summary.hpp"

namespace {

using namespace mpros;
using namespace mpros::fleet;

constexpr std::uint64_t kShips = 128;
constexpr double kMeasureSeconds = 1.0;

net::FleetSummary make_summary(std::uint64_t ship, std::uint64_t seq) {
  net::FleetSummary s;
  s.ship = ShipId(ship);
  s.ship_name = "Hull-" + std::to_string(ship);
  s.timestamp = SimTime::from_seconds(600.0 * static_cast<double>(seq));
  s.dcs_alive = 4;
  for (int m = 0; m < 2; ++m) {
    net::MachineHealthSummary machine;
    machine.machine = ObjectId(ship * 10 + static_cast<std::uint64_t>(m));
    machine.name = "Machine " + std::to_string(m);
    machine.klass = m == 0 ? "motor" : "pump";
    machine.health =
        1.0 - 0.001 * static_cast<double>((ship * 7 + seq * 3 +
                                           static_cast<std::uint64_t>(m)) %
                                          400);
    machine.has_diagnosis = true;
    machine.top_mode = domain::FailureMode::MotorImbalance;
    machine.top_belief = 0.3;
    machine.top_severity = 0.5;
    machine.priority = machine.top_belief * machine.top_severity *
                       (1.0 - machine.health);
    s.machines.push_back(machine);
  }
  return s;
}

struct SweepPoint {
  std::size_t readers = 0;
  std::uint64_t reads = 0;
  double reads_per_s = 0.0;
  std::uint64_t summaries_applied = 0;
  std::uint64_t publishes = 0;
};

SweepPoint run_point(std::size_t reader_count) {
  FleetServer server;
  for (std::uint64_t k = 1; k <= kShips; ++k) {
    server.expect_ship(ShipId(k), "Hull-" + std::to_string(k), SimTime(0));
    (void)server.accept(net::FleetSummaryEnvelope{ShipId(k), 1,
                                                  make_summary(k, 1)},
                        SimTime::from_seconds(600));
  }
  server.publish(SimTime::from_seconds(600));

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};

  // The ingest side: 128 hulls keep summarizing, the merge barrier keeps
  // publishing fresh epochs. Paced at one full fleet round per 5 ms
  // (~25k summaries/s, ~200 epochs/s) — far hotter than any real shore
  // uplink, but a fixed duty cycle, so what the sweep measures is the
  // read path and not how the OS splits one saturated core between an
  // unbounded writer and N readers.
  std::thread ingest([&] {
    go.wait(false, std::memory_order_acquire);
    std::uint64_t seq = 2;
    auto next = std::chrono::steady_clock::now();
    while (!stop.load(std::memory_order_acquire)) {
      const SimTime at =
          SimTime::from_seconds(600.0 * static_cast<double>(seq));
      for (std::uint64_t k = 1; k <= kShips; ++k) {
        (void)server.accept(net::FleetSummaryEnvelope{ShipId(k), seq,
                                                      make_summary(k, seq)},
                            at);
      }
      server.publish(at);
      ++seq;
      next += std::chrono::milliseconds(5);
      std::this_thread::sleep_until(next);
    }
  });

  // The read side: the shore dashboard's "worst items fleet-wide" page.
  // Each reader pins a snapshot and refreshes it by epoch — the hot path
  // is one relaxed epoch load plus a walk over immutable local data, with
  // no shared refcount traffic between readers.
  std::vector<std::thread> readers;
  std::vector<std::uint64_t> reads(reader_count, 0);
  for (std::size_t r = 0; r < reader_count; ++r) {
    readers.emplace_back([&, r] {
      go.wait(false, std::memory_order_acquire);
      std::shared_ptr<const FleetSnapshot> snap = server.snapshot();
      double sink = 0.0;
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_acquire)) {
        server.refresh(snap);
        for (const FleetMaintenanceItem& item : snap->items) {
          sink += item.priority + item.health;
        }
        sink += static_cast<double>(snap->ships_alive + snap->outliers.size());
        ++n;
      }
      reads[r] = n + static_cast<std::uint64_t>(sink == -1.0);
    });
  }

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  go.notify_all();
  std::this_thread::sleep_for(std::chrono::duration<double>(kMeasureSeconds));
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  ingest.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  SweepPoint p;
  p.readers = reader_count;
  for (const std::uint64_t n : reads) p.reads += n;
  p.reads_per_s = static_cast<double>(p.reads) / elapsed;
  p.summaries_applied = server.stats().summaries_applied;
  p.publishes = server.stats().publishes;
  return p;
}

void write_json(const std::vector<SweepPoint>& sweep, double flatness) {
  std::FILE* f = std::fopen("BENCH_FLEETTIER.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr,
                 "bench_fleet_server: cannot write BENCH_FLEETTIER.json\n");
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"experiment\": \"E19\",\n"
               "  \"ingesting_ships\": %llu,\n"
               "  \"measure_seconds\": %.2f,\n"
               "  \"reader_sweep\": [\n",
               static_cast<unsigned long long>(kShips), kMeasureSeconds);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(f,
                 "    {\"readers\": %zu, \"reads\": %llu, "
                 "\"reads_per_s\": %.0f, \"summaries_applied\": %llu, "
                 "\"publishes\": %llu}%s\n",
                 p.readers, static_cast<unsigned long long>(p.reads),
                 p.reads_per_s,
                 static_cast<unsigned long long>(p.summaries_applied),
                 static_cast<unsigned long long>(p.publishes),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"throughput_flatness_min_over_max\": %.3f\n"
               "}\n",
               flatness);
  std::fclose(f);
}

}  // namespace

int main() {
  std::printf(
      "\nE19 fleet-tier reads under ingest (ISSUE 6; acceptance: aggregate\n"
      "reader throughput flat across 1 -> 1000 readers while %llu ships\n"
      "ingest)\n\n",
      static_cast<unsigned long long>(kShips));

  // Warm-up point (thread pools, allocator arenas) — not recorded.
  (void)run_point(2);

  std::vector<SweepPoint> sweep;
  std::printf("%8s  %12s  %14s  %10s\n", "readers", "reads", "reads/s",
              "publishes");
  for (const std::size_t readers : {1, 4, 16, 64, 256, 1000}) {
    const SweepPoint p = run_point(readers);
    std::printf("%8zu  %12llu  %14.0f  %10llu\n", p.readers,
                static_cast<unsigned long long>(p.reads), p.reads_per_s,
                static_cast<unsigned long long>(p.publishes));
    sweep.push_back(p);
  }

  double lo = sweep.front().reads_per_s;
  double hi = sweep.front().reads_per_s;
  for (const SweepPoint& p : sweep) {
    lo = std::min(lo, p.reads_per_s);
    hi = std::max(hi, p.reads_per_s);
  }
  const double flatness = hi > 0.0 ? lo / hi : 0.0;
  std::printf("\nthroughput flatness (min/max across sweep): %.3f\n",
              flatness);

  write_json(sweep, flatness);
  std::printf("BENCH_FLEETTIER.json written\n");
  return 0;
}
