#pragma once
// Temporal reasoning over severity histories (paper §10.1).
//
// "Third, temporal reasoning components could be implemented to scrutinize
// failure histories and provide better projections of future faults as
// they develop." The TrendProjector keeps a per-track history of reported
// severities, fits a robust linear trend, and projects when the severity
// will cross the failure line — yielding a data-driven prognostic vector
// that sharpens the gradient-derived defaults as evidence accumulates.

#include <optional>
#include <vector>

#include "mpros/common/clock.hpp"
#include "mpros/fusion/prognostic_fusion.hpp"

namespace mpros::fusion {

struct TrendConfig {
  std::size_t min_points = 3;     ///< history needed before projecting
  std::size_t max_points = 64;    ///< sliding window length
  double failure_severity = 1.0;  ///< severity treated as functional failure
  /// Severity slope below this (per day) is treated as "not degrading"
  /// (1e-3/day ≈ 3 years to traverse the severity scale — beyond any
  /// actionable horizon).
  double min_slope_per_day = 1e-3;
  /// Minimum fit quality before a projection is trusted; noisy plateaus
  /// (e.g. a fuzzy engine's saturated severity) must not project.
  double min_r_squared = 0.4;
};

/// Least-squares line fit over (time, severity) samples.
struct TrendFit {
  double slope_per_day = 0.0;
  double intercept = 0.0;  ///< severity at t = 0
  double r_squared = 0.0;  ///< fit quality, 0..1
};

class TrendProjector {
 public:
  explicit TrendProjector(TrendConfig cfg = {});

  /// Record one observed severity at absolute time `t` (out-of-order
  /// samples are inserted in time order; §5.1 disorder tolerance).
  void observe(SimTime t, double severity);

  [[nodiscard]] std::size_t history_size() const { return history_.size(); }
  [[nodiscard]] std::optional<TrendFit> fit() const;

  /// Projected time-to-failure from `now`, if the track is degrading.
  [[nodiscard]] std::optional<SimTime> time_to_failure(SimTime now) const;

  /// Data-driven prognostic vector from `now`: probability ramps along the
  /// projected severity trajectory (50% when projected severity hits the
  /// failure line, ~95% one projection interval beyond). Empty when the
  /// trend is flat, improving, or under-sampled.
  [[nodiscard]] PrognosticVector project(SimTime now) const;

  void clear() {
    history_.clear();
    head_ = 0;
  }

 private:
  struct Sample {
    SimTime t;
    double severity;
  };

  /// Rotate storage so the oldest sample sits at index 0 (steady-state
  /// inserts keep the window circular to avoid an O(window) shift per
  /// observation; out-of-order arrivals and readers linearize first).
  void linearize();

  TrendConfig cfg_;
  /// Time-ordered when head_ == 0; otherwise circular with the oldest
  /// sample at head_ (only once the window is full).
  std::vector<Sample> history_;
  std::size_t head_ = 0;
};

}  // namespace mpros::fusion
