#pragma once
// Process-wide FFT plan and window caches.
//
// The vibration test path runs the same handful of transform sizes on every
// acquisition, but plan construction (bit-reversal table + twiddles,
// O(n log n)) and window synthesis (n transcendental evaluations) used to be
// paid per call. These caches build each plan/window once per process and
// hand out stable references for its lifetime: nothing is ever evicted, so
// a returned reference stays valid forever and the steady-state lookup is a
// shared-lock map probe. Hits and misses are counted through the telemetry
// registry ("dsp.plan_cache_hit" / "dsp.plan_cache_miss" and the window
// equivalents); because entries are never evicted, the miss count equals
// the number of plans built.

#include <cstddef>
#include <map>
#include <memory>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "mpros/dsp/fft.hpp"
#include "mpros/dsp/window.hpp"

namespace mpros::dsp {

/// Window coefficients with their normalization gains precomputed, so
/// spectrum code pays neither the cos() synthesis nor the gain reductions
/// per call.
struct CachedWindow {
  std::vector<double> coeffs;
  double coherent_gain = 0.0;  // sum of coefficients
  double power_gain = 0.0;     // sum of squared coefficients
};

/// Thread-safe cache of FftPlan / RealFftPlan keyed by transform size.
class PlanCache {
 public:
  static PlanCache& instance();

  /// n-point complex plan (n = power of two >= 2). Built on first request.
  const FftPlan& complex_plan(std::size_t n);

  /// n-real-sample packed plan (n = power of two >= 4).
  const RealFftPlan& real_plan(std::size_t n);

  /// Number of distinct plans currently cached (tests/diagnostics).
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::size_t, std::unique_ptr<FftPlan>> complex_;
  std::map<std::size_t, std::unique_ptr<RealFftPlan>> real_;
};

/// Thread-safe cache of window tapers keyed by (kind, length).
class WindowCache {
 public:
  static WindowCache& instance();

  /// Window of `n` coefficients. Built on first request; the reference is
  /// stable for the life of the process.
  const CachedWindow& get(WindowKind kind, std::size_t n);

  [[nodiscard]] std::size_t size() const;

 private:
  using Key = std::pair<WindowKind, std::size_t>;
  mutable std::shared_mutex mu_;
  std::map<Key, std::unique_ptr<CachedWindow>> windows_;
};

}  // namespace mpros::dsp
