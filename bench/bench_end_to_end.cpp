// E10 — Fig 1 / Fig 2 end to end.
//
// Reconstructs the paper's Fig 2 situation: one machine ("A/C Compressor
// Motor 1") accumulating condition reports from multiple knowledge sources,
// some conflicting and some reinforcing, fused into per-group beliefs and
// failure predictions. Prints the browser screen, then benches the whole
// Fig 1 pipeline (plant -> DC analyzers -> network -> PDME fusion).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mpros/mpros/ship_system.hpp"
#include "mpros/pdme/browser.hpp"

namespace {

using namespace mpros;
using domain::FailureMode;

void print_fig2_screen() {
  ShipSystemConfig cfg;
  cfg.plant_count = 1;
  cfg.dc_template.vibration_period = SimTime::from_seconds(600);
  cfg.use_wnn = true;  // Fig 2 shows multiple knowledge sources per machine
  cfg.wnn_training.windows_per_class = 8;
  cfg.wnn_training.classifier.train.epochs = 120;
  ShipSystem ship(cfg);

  // Concurrent motor faults across groups: imbalance (rotor dynamics), a
  // growing bearing defect (bearing group), and a winding fault whose
  // thermal signature the fuzzy analyzer owns -> conflicting and
  // reinforcing reports from several knowledge sources, as in Fig 2.
  ship.chiller(0).faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                                     SimTime(0), 0.8,
                                     plant::GrowthProfile::Step});
  ship.chiller(0).faults().schedule({FailureMode::MotorBearingWear,
                                     SimTime(0), SimTime::from_hours(1.0),
                                     0.7, plant::GrowthProfile::Linear});
  ship.chiller(0).faults().schedule({FailureMode::StatorWindingFault,
                                     SimTime::from_hours(0.5),
                                     SimTime::from_hours(1.0), 0.6,
                                     plant::GrowthProfile::Linear});
  ship.run_until(SimTime::from_hours(2.0));

  std::printf("\nE10 Fig 2 reconstruction (reports for one machine, fused)\n");
  std::printf("%s\n",
              pdme::render_machine(ship.pdme(), ship.model(),
                                   ship.plant_objects(0).motor)
                  .c_str());
}

void BM_EndToEndHour(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ShipSystemConfig cfg;
    cfg.plant_count = 2;
    cfg.seed = 0xE10 + state.iterations();
    ShipSystem ship(cfg);
    ship.chiller(0).faults().schedule({FailureMode::MotorImbalance,
                                       SimTime(0), SimTime(0), 0.9,
                                       plant::GrowthProfile::Step});
    state.ResumeTiming();

    ship.run_until(SimTime::from_hours(1.0));
    benchmark::DoNotOptimize(ship.pdme().prioritized_list());
  }
  state.SetLabel("2 plants, 1 simulated hour, full pipeline");
}
BENCHMARK(BM_EndToEndHour)->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_BrowserRender(benchmark::State& state) {
  ShipSystemConfig cfg;
  cfg.plant_count = 1;
  ShipSystem ship(cfg);
  ship.chiller(0).faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                                     SimTime(0), 0.9,
                                     plant::GrowthProfile::Step});
  ship.run_until(SimTime::from_hours(1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdme::render_machine(
        ship.pdme(), ship.model(), ship.plant_objects(0).motor));
  }
  state.SetLabel("Fig 2 screens");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BrowserRender);

void BM_IcasExport(benchmark::State& state) {
  ShipSystemConfig cfg;
  cfg.plant_count = 4;
  ShipSystem ship(cfg);
  for (std::size_t p = 0; p < 4; ++p) {
    ship.chiller(p).faults().schedule(
        {domain::all_failure_modes()[p * 3], SimTime(0), SimTime(0), 0.8,
         plant::GrowthProfile::Step});
  }
  ship.run_until(SimTime::from_hours(1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pdme::export_icas_csv(ship.pdme(), ship.model()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IcasExport);

}  // namespace

int main(int argc, char** argv) {
  print_fig2_screen();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
