#pragma once
// Electro-mechanical actuator simulator for the Fig 3 scenario.
//
// "EMAs are essentially large solenoids meant to replace hydraulic
// actuators for the steering of rocket engines. Prediction of this fault
// was done by recognizing stiction in the mechanism." (§6.3) The simulator
// produces the two channels the paper's state machines watch: drive-motor
// current and commanded position (CPOS). Developing stiction injects
// current spikes *not* associated with commanded position changes; healthy
// motion transients accompany CPOS changes.

#include <cstdint>
#include <vector>

#include "mpros/common/rng.hpp"

namespace mpros::plant {

struct EmaSample {
  double current = 0.0;  ///< drive-motor current (A)
  double cpos = 0.0;     ///< commanded position (arbitrary units)
};

struct EmaConfig {
  double baseline_current = 2.0;
  double motion_current = 5.0;     ///< extra current while slewing
  double spike_current = 6.0;      ///< stiction spike height
  double noise_sigma = 0.05;
  std::size_t spike_width = 2;     ///< samples at elevated current
  std::size_t settle_gap = 10;     ///< min samples between events
  std::uint64_t seed = 0xE3A;
};

class EmaSimulator {
 public:
  explicit EmaSimulator(EmaConfig cfg = EmaConfig());

  /// Generate `n` samples. `stiction_level` in [0,1] scales the expected
  /// spike rate (0 = healthy); commanded moves occur at `move_rate`
  /// probability per sample and draw motion current legitimately.
  [[nodiscard]] std::vector<EmaSample> generate(std::size_t n,
                                                double stiction_level,
                                                double move_rate = 0.002);

  /// Count of stiction spikes injected by the last generate() call (ground
  /// truth for the E3 scenario assertions).
  [[nodiscard]] std::size_t injected_spikes() const {
    return injected_spikes_;
  }

 private:
  EmaConfig cfg_;
  Rng rng_;
  std::size_t injected_spikes_ = 0;
};

}  // namespace mpros::plant
