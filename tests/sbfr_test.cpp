// SBFR tests: bytecode validation, serialization, the Fig 3 spike/stiction
// pair (experiment E3), library machines, and the E4 footprint claims.

#include <gtest/gtest.h>

#include <vector>

#include "mpros/plant/ema.hpp"
#include "mpros/sbfr/interpreter.hpp"
#include "mpros/sbfr/disasm.hpp"
#include "mpros/sbfr/library.hpp"

namespace mpros::sbfr {
namespace {

/// Step a two-channel system over (current, cpos) pairs.
void run(SbfrSystem& sys, const std::vector<std::pair<double, double>>& data) {
  for (const auto& [current, cpos] : data) {
    const double inputs[2] = {current, cpos};
    sys.step(inputs);
  }
}

TEST(ExprTest, BytecodeIsCompact) {
  const Expr cond = Expr::delta(0) > 0.5 && Expr::dt() <= 4.0;
  // delta(2) const(5) gt(1) dt(1) const(5) le(1) and(1) = 16 bytes.
  EXPECT_EQ(cond.code().size(), 16u);
}

TEST(ExprTest, ActionBytecode) {
  const Action a = Action().set_local(0, Expr::local(0) + 1.0);
  // local(2) const(5) add(1) store(2) = 10 bytes.
  EXPECT_EQ(a.code().size(), 10u);
}

TEST(MachineValidationTest, AcceptsWellFormed) {
  EXPECT_TRUE(validate(make_spike_machine()).empty());
  EXPECT_TRUE(validate(make_stiction_machine()).empty());
}

TEST(MachineValidationTest, RejectsBadInitialState) {
  MachineDef def("bad", 0, /*initial_state=*/5);
  def.add_state("s0");
  EXPECT_FALSE(validate(def).empty());
}

TEST(MachineSerializationTest, RoundTrip) {
  const MachineDef original = make_spike_machine();
  const std::vector<std::uint8_t> image = original.serialize();
  const MachineDef restored = MachineDef::deserialize(image);
  EXPECT_EQ(restored.serialize(), image);
  EXPECT_EQ(restored.states().size(), original.states().size());
  EXPECT_EQ(restored.num_locals(), original.num_locals());
  EXPECT_TRUE(validate(restored).empty());
}

TEST(MachineSerializationTest, DownloadedMachineRuns) {
  // §6.3: "new finite-state machines may be downloaded into the smart
  // sensor" — a deserialized image must behave like the original.
  const std::vector<std::uint8_t> spike_img = make_spike_machine().serialize();
  const std::vector<std::uint8_t> stiction_img =
      make_stiction_machine().serialize();

  SbfrSystem sys(2);
  sys.add_machine(MachineDef::deserialize(spike_img));
  sys.add_machine(MachineDef::deserialize(stiction_img));

  std::vector<std::pair<double, double>> data(4, {2.0, 0.0});  // primes delta
  data.push_back({8.0, 0.0});
  data.push_back({8.0, 0.0});
  data.push_back({2.0, 0.0});
  for (int i = 0; i < 6; ++i) data.push_back({2.0, 0.0});
  run(sys, data);
  EXPECT_EQ(sys.local(1, 0), 1.0);  // the downloaded pair counted one spike
}

// --- Fig 3 behaviour (E3) --------------------------------------------------

class SpikePairTest : public ::testing::Test {
 protected:
  SpikePairTest() : sys_(2) {
    sys_.add_machine(make_spike_machine());
    sys_.add_machine(make_stiction_machine());
  }

  void feed_spike(double cpos = 0.0) {
    run(sys_, {{8.0, cpos}, {8.0, cpos}, {2.0, cpos}, {2.0, cpos},
               {2.0, cpos}, {2.0, cpos}});
  }
  void feed_quiet(std::size_t n, double cpos = 0.0) {
    run(sys_, std::vector<std::pair<double, double>>(n, {2.0, cpos}));
  }

  SbfrSystem sys_;
};

TEST_F(SpikePairTest, CleanSpikeIsCountedOnce) {
  feed_quiet(3);
  feed_spike();
  feed_quiet(3);
  EXPECT_EQ(sys_.local(1, 0), 1.0);
  // Machine 1 reset machine 0's status after counting (paper's handshake).
  EXPECT_EQ(sys_.status(0), 0.0);
  EXPECT_EQ(sys_.state_name(1), "Wait");
}

TEST_F(SpikePairTest, SlowRampIsNotASpike) {
  // Gradual rise then gradual fall: each delta below the 0.5 threshold.
  std::vector<std::pair<double, double>> data;
  for (int i = 0; i <= 20; ++i) data.push_back({2.0 + 0.3 * i, 0.0});
  for (int i = 20; i >= 0; --i) data.push_back({2.0 + 0.3 * i, 0.0});
  run(sys_, data);
  EXPECT_EQ(sys_.local(1, 0), 0.0);
}

TEST_F(SpikePairTest, StepUpIsNotASpike) {
  // Rise that never comes back down: P1 times out to Wait.
  run(sys_, {{2.0, 0.0}, {8.0, 0.0}, {8.0, 0.0}, {8.0, 0.0}, {8.0, 0.0},
             {8.0, 0.0}, {8.0, 0.0}, {8.0, 0.0}});
  EXPECT_EQ(sys_.local(1, 0), 0.0);
  EXPECT_EQ(sys_.state_name(0), "Wait");
}

TEST_F(SpikePairTest, SpikeDuringCommandedMoveNotCounted) {
  feed_quiet(3);
  // CPOS changes on every sample during this spike.
  run(sys_, {{8.0, 1.0}, {8.0, 2.0}, {2.0, 3.0}, {2.0, 4.0}, {2.0, 5.0},
             {2.0, 6.0}});
  feed_quiet(3, 6.0);
  EXPECT_EQ(sys_.local(1, 0), 0.0);
}

TEST_F(SpikePairTest, FiveSpikesTripStiction) {
  // "When the count is greater than 4, a stiction condition is flagged."
  feed_quiet(2);  // prime the delta latch so the first rise is visible
  for (int i = 0; i < 5; ++i) {
    feed_spike();
    feed_quiet(4);
  }
  EXPECT_EQ(sys_.local(1, 0), 5.0);
  feed_quiet(2);  // one more cycle for the Local:1 > 4 transition
  EXPECT_EQ(sys_.state_name(1), "Stiction");
  EXPECT_EQ(sys_.status(1), 1.0);

  // The stiction machine emitted the host-visible event.
  const auto events = sys_.drain_events();
  bool stiction_event = false;
  for (const Event& e : events) {
    if (e.machine == 1 && e.code == kStictionEventCode) stiction_event = true;
  }
  EXPECT_TRUE(stiction_event);
}

TEST_F(SpikePairTest, FourSpikesDoNotTrip) {
  feed_quiet(2);
  for (int i = 0; i < 4; ++i) {
    feed_spike();
    feed_quiet(4);
  }
  feed_quiet(4);
  EXPECT_EQ(sys_.state_name(1), "Wait");
  EXPECT_EQ(sys_.status(1), 0.0);
}

TEST_F(SpikePairTest, HostAckRearmsStictionMachine) {
  feed_quiet(2);
  for (int i = 0; i < 5; ++i) {
    feed_spike();
    feed_quiet(4);
  }
  feed_quiet(2);
  ASSERT_EQ(sys_.state_name(1), "Stiction");
  // "That agent has the responsibility to then reset Machine 1's status
  // register to 0 allowing the machine itself to set the count back to 0."
  sys_.set_status(1, 0.0);
  feed_quiet(2);
  EXPECT_EQ(sys_.state_name(1), "Wait");
  EXPECT_EQ(sys_.local(1, 0), 0.0);
}

TEST_F(SpikePairTest, ResetRestoresInitialState) {
  feed_spike();
  sys_.reset();
  EXPECT_EQ(sys_.local(1, 0), 0.0);
  EXPECT_EQ(sys_.state_name(0), "Wait");
  EXPECT_EQ(sys_.cycle(), 0u);
}

// --- EMA end-to-end (plant-driven E3 scenario) ----------------------------

TEST(EmaScenarioTest, StictionTraceTripsDetector) {
  plant::EmaSimulator ema;
  const auto trace = ema.generate(20000, /*stiction_level=*/1.0);
  ASSERT_GT(ema.injected_spikes(), 10u);

  SbfrSystem sys(2);
  sys.add_machine(make_spike_machine());
  sys.add_machine(make_stiction_machine());
  bool tripped = false;
  for (const plant::EmaSample& s : trace) {
    const double inputs[2] = {s.current, s.cpos};
    sys.step(inputs);
    if (sys.status(1) != 0.0) {
      tripped = true;
      break;
    }
  }
  EXPECT_TRUE(tripped);
}

TEST(EmaScenarioTest, HealthyTraceStaysQuiet) {
  plant::EmaSimulator ema;
  const auto trace = ema.generate(20000, /*stiction_level=*/0.0,
                                  /*move_rate=*/0.01);
  SbfrSystem sys(2);
  sys.add_machine(make_spike_machine());
  sys.add_machine(make_stiction_machine());
  for (const plant::EmaSample& s : trace) {
    const double inputs[2] = {s.current, s.cpos};
    sys.step(inputs);
  }
  EXPECT_EQ(sys.status(1), 0.0);
  EXPECT_LE(sys.local(1, 0), 4.0);
}

// --- Library machines -------------------------------------------------------

TEST(ThresholdMachineTest, AlarmsAfterHoldAndRearms) {
  SbfrSystem sys(1);
  sys.add_machine(make_threshold_machine(0, 10.0, 3, 0, 0x42));

  const auto step_n = [&](double v, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const double inputs[1] = {v};
      sys.step(inputs);
    }
  };

  step_n(5.0, 5);
  EXPECT_EQ(sys.status(0), 0.0);
  step_n(12.0, 2);  // not held long enough
  step_n(5.0, 1);
  EXPECT_EQ(sys.status(0), 0.0);

  step_n(12.0, 6);
  EXPECT_EQ(sys.status(0), 1.0);
  const auto events = sys.drain_events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].code, 0x42);
  EXPECT_NEAR(events[0].payload, 12.0, 1e-9);

  // Ack + signal recovery re-arms.
  sys.set_status(0, 0.0);
  step_n(5.0, 2);
  EXPECT_EQ(sys.state_name(0), "Idle");
}

TEST(TrendMachineTest, SustainedRiseLatches) {
  SbfrSystem sys(1);
  sys.add_machine(make_trend_machine(0, 0.1, 5, 0, 0x43));
  double v = 0.0;
  for (int i = 0; i < 10; ++i) {
    v += 0.5;
    const double inputs[1] = {v};
    sys.step(inputs);
  }
  EXPECT_EQ(sys.status(0), 1.0);
}

TEST(TrendMachineTest, NoisyFlatSignalDoesNotLatch) {
  SbfrSystem sys(1);
  sys.add_machine(make_trend_machine(0, 0.1, 5, 0, 0x43));
  // Alternating up/down resets the run counter.
  for (int i = 0; i < 40; ++i) {
    const double inputs[1] = {(i % 2 == 0) ? 1.0 : 0.0};
    sys.step(inputs);
  }
  EXPECT_EQ(sys.status(0), 0.0);
}

// --- Disassembler -----------------------------------------------------------

TEST(DisasmTest, RendersConditionInfix) {
  const Expr cond = Expr::delta(0) > 0.5 && Expr::dt() <= 4.0;
  EXPECT_EQ(disassemble_program(cond.code()),
            "((delta(ch0) > 0.5) && (dt <= 4))");
}

TEST(DisasmTest, RendersActionsAsStatements) {
  const Action a = Action()
                       .set_status(0, Expr::constant(0))
                       .set_local(1, Expr::local(1) + 1.0);
  EXPECT_EQ(disassemble_program(a.code()),
            "status[0] := 0; local[1] := (local[1] + 1)");
}

TEST(DisasmTest, WholeMachineListing) {
  const std::string listing = disassemble(make_stiction_machine());
  EXPECT_NE(listing.find("machine \"ema-stiction\""), std::string::npos);
  EXPECT_NE(listing.find("Wait -> Stiction"), std::string::npos);
  EXPECT_NE(listing.find("(local[0] > 4)"), std::string::npos);
  EXPECT_NE(listing.find("emit(0x51"), std::string::npos);
}

TEST(DisasmTest, DownloadedImageDisassemblesLikeOriginal) {
  // Names are lost in the image, but the program logic must read the same.
  const MachineDef original = make_spike_machine();
  const MachineDef downloaded =
      MachineDef::deserialize(original.serialize());
  std::string a = disassemble(original);
  std::string b = disassemble(downloaded);
  // Strip the (name-bearing) header lines and state names, compare bodies
  // by extracting only the "when ..." clauses.
  const auto clauses = [](const std::string& text) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while ((pos = text.find("when ", pos)) != std::string::npos) {
      const std::size_t end = text.find('\n', pos);
      out.push_back(text.substr(pos, end - pos));
      pos = end;
    }
    return out;
  };
  EXPECT_EQ(clauses(a), clauses(b));
}

// --- Footprint (E4) ---------------------------------------------------------

TEST(FootprintTest, MachineImagesAreTiny) {
  // Paper: spike machine 229 bytes, stiction machine 93 bytes. Our encoding
  // differs but must stay the same order of magnitude.
  EXPECT_LE(make_spike_machine().image_size(), 400u);
  EXPECT_LE(make_stiction_machine().image_size(), 250u);
}

TEST(FootprintTest, HundredMachinesUnder32K) {
  // Paper: "100 state machines operating in parallel and their interpreter
  // can fit in less than 32K bytes."
  SbfrSystem sys(4);
  for (int i = 0; i < 50; ++i) {
    sys.add_machine(make_spike_machine());
    sys.add_machine(make_stiction_machine());
  }
  EXPECT_EQ(sys.machine_count(), 100u);
  EXPECT_LT(sys.memory_footprint(), 32u * 1024u);
}

TEST(InterpreterTest, DtResetsOnStateChangeOnly) {
  // A machine that moves A->B on input>0 then B->A on dt>=3.
  MachineDef def("dt-test", 0, 0);
  const auto a = def.add_state("A");
  const auto b = def.add_state("B");
  def.add_transition(a, b, Expr::input(0) > 0.5);
  def.add_transition(b, a, Expr::dt() >= 3.0);

  SbfrSystem sys(1);
  sys.add_machine(def);
  const double hi[1] = {1.0}, lo[1] = {0.0};
  sys.step(hi);  // -> B (dt counts from next cycle)
  EXPECT_EQ(sys.state_name(0), "B");
  sys.step(lo);  // dt=0
  sys.step(lo);  // dt=1
  sys.step(lo);  // dt=2
  EXPECT_EQ(sys.state_name(0), "B");
  sys.step(lo);  // dt=3 -> back to A
  EXPECT_EQ(sys.state_name(0), "A");
}

TEST(InterpreterTest, CrossMachineStateObservation) {
  // Machine 1 transitions when machine 0 enters state 1.
  MachineDef m0("m0", 0, 0);
  const auto s0 = m0.add_state("idle");
  const auto s1 = m0.add_state("active");
  m0.add_transition(s0, s1, Expr::input(0) > 0.5);

  MachineDef m1("m1", 0, 0);
  const auto w = m1.add_state("watch");
  const auto f = m1.add_state("follow");
  m1.add_transition(w, f, Expr::state_of(0) == 1.0);

  SbfrSystem sys(1);
  sys.add_machine(m0);
  sys.add_machine(m1);
  const double hi[1] = {1.0};
  sys.step(hi);  // m0 -> active; m1 sees it the same cycle (in-order eval)
  EXPECT_EQ(sys.state_name(1), "follow");
}

}  // namespace
}  // namespace mpros::sbfr
