#include "mpros/db/database.hpp"

#include "mpros/common/assert.hpp"

namespace mpros::db {

Table& Database::create_table(TableSchema schema) {
  MPROS_EXPECTS(!schema.name.empty());
  MPROS_EXPECTS(!tables_.contains(schema.name));
  const std::string name = schema.name;
  auto [it, inserted] =
      tables_.emplace(name, std::make_unique<Table>(std::move(schema)));
  MPROS_ASSERT(inserted);
  return *it->second;
}

bool Database::has_table(const std::string& name) const {
  return tables_.contains(name);
}

Table& Database::table(const std::string& name) {
  const auto it = tables_.find(name);
  MPROS_EXPECTS(it != tables_.end());
  return *it->second;
}

const Table& Database::table(const std::string& name) const {
  const auto it = tables_.find(name);
  MPROS_EXPECTS(it != tables_.end());
  return *it->second;
}

void Database::drop_table(const std::string& name) {
  MPROS_EXPECTS(!in_txn_);  // DDL inside a transaction is not supported
  MPROS_EXPECTS(tables_.erase(name) == 1);
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

void Database::begin() {
  MPROS_EXPECTS(!in_txn_);
  in_txn_ = true;
  undo_log_.clear();
}

void Database::commit() {
  MPROS_EXPECTS(in_txn_);
  in_txn_ = false;
  undo_log_.clear();
}

void Database::rollback() {
  MPROS_EXPECTS(in_txn_);
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    Table& t = table(it->table);
    switch (it->kind) {
      case UndoOp::Kind::DeleteInserted:
        t.erase(it->key);
        break;
      case UndoOp::Kind::RestoreUpdated:
        t.update(it->key, it->column, it->old_value);
        break;
      case UndoOp::Kind::ReinsertErased:
        t.insert(it->old_row);
        break;
    }
  }
  undo_log_.clear();
  in_txn_ = false;
}

std::int64_t Database::insert(const std::string& table_name, Row row) {
  const std::int64_t key = table(table_name).insert(std::move(row));
  if (in_txn_) {
    undo_log_.push_back(
        {UndoOp::Kind::DeleteInserted, table_name, key, {}, {}, {}});
  }
  return key;
}

std::int64_t Database::insert_auto(const std::string& table_name,
                                   Row row_without_key) {
  const std::int64_t key =
      table(table_name).insert_auto(std::move(row_without_key));
  if (in_txn_) {
    undo_log_.push_back(
        {UndoOp::Kind::DeleteInserted, table_name, key, {}, {}, {}});
  }
  return key;
}

bool Database::update(const std::string& table_name, std::int64_t key,
                      const std::string& column, Value v) {
  Table& t = table(table_name);
  const Row* row = t.find(key);
  if (row == nullptr) return false;
  if (in_txn_) {
    const auto col = t.schema().column_index(column);
    MPROS_EXPECTS(col.has_value());
    undo_log_.push_back({UndoOp::Kind::RestoreUpdated, table_name, key, column,
                         (*row)[*col], {}});
  }
  return t.update(key, column, std::move(v));
}

bool Database::erase(const std::string& table_name, std::int64_t key) {
  Table& t = table(table_name);
  const Row* row = t.find(key);
  if (row == nullptr) return false;
  if (in_txn_) {
    undo_log_.push_back(
        {UndoOp::Kind::ReinsertErased, table_name, key, {}, {}, *row});
  }
  return t.erase(key);
}

}  // namespace mpros::db
