#include "mpros/dsp/window.hpp"

#include <cmath>

#include "mpros/common/assert.hpp"
#include "mpros/common/units.hpp"

namespace mpros::dsp {

std::vector<double> make_window(WindowKind kind, std::size_t n) {
  MPROS_EXPECTS(n >= 2);
  std::vector<double> w(n);
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / denom;  // 0..1
    switch (kind) {
      case WindowKind::Rectangular:
        w[i] = 1.0;
        break;
      case WindowKind::Hann:
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * t);
        break;
      case WindowKind::Hamming:
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * t);
        break;
      case WindowKind::Blackman:
        w[i] = 0.42 - 0.5 * std::cos(kTwoPi * t) +
               0.08 * std::cos(2.0 * kTwoPi * t);
        break;
      case WindowKind::FlatTop:
        // SFT5 coefficients (amplitude-flat within ~0.01 dB).
        w[i] = 0.21557895 - 0.41663158 * std::cos(kTwoPi * t) +
               0.277263158 * std::cos(2.0 * kTwoPi * t) -
               0.083578947 * std::cos(3.0 * kTwoPi * t) +
               0.006947368 * std::cos(4.0 * kTwoPi * t);
        break;
    }
  }
  return w;
}

void apply_window(std::span<double> x, std::span<const double> window) {
  MPROS_EXPECTS(x.size() == window.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] *= window[i];
}

double coherent_gain(std::span<const double> window) {
  double sum = 0.0;
  for (double v : window) sum += v;
  return sum;
}

double power_gain(std::span<const double> window) {
  double sum = 0.0;
  for (double v : window) sum += v * v;
  return sum;
}

const char* to_string(WindowKind kind) {
  switch (kind) {
    case WindowKind::Rectangular: return "rectangular";
    case WindowKind::Hann: return "hann";
    case WindowKind::Hamming: return "hamming";
    case WindowKind::Blackman: return "blackman";
    case WindowKind::FlatTop: return "flattop";
  }
  return "?";
}

}  // namespace mpros::dsp
