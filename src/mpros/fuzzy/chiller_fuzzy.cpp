#include "mpros/fuzzy/chiller_fuzzy.hpp"

#include <algorithm>

#include "mpros/common/assert.hpp"
#include "mpros/rules/features.hpp"

namespace mpros::fuzzy {

using domain::FailureMode;
using rules::feat::kBearingTemp;
using rules::feat::kCondApproach;
using rules::feat::kCondPressure;
using rules::feat::kChwSupplyTemp;
using rules::feat::kEvapPressure;
using rules::feat::kLoad;
using rules::feat::kMotorCurrent;
using rules::feat::kOilPressure;
using rules::feat::kOilTemp;
using rules::feat::kSuperheat;
using rules::feat::kWindingTemp;

namespace {

/// Shared 0..1 severity output variable with four terms.
LinguisticVariable severity_output() {
  LinguisticVariable out("severity", 0.0, 1.0);
  out.add_term("none", Trapezoidal{0.0, 0.0, 0.05, 0.20});
  out.add_term("slight", Triangular{0.10, 0.30, 0.50});
  out.add_term("serious", Triangular{0.40, 0.62, 0.85});
  out.add_term("extreme", Trapezoidal{0.75, 0.90, 1.0, 1.0});
  return out;
}

}  // namespace

FuzzyDiagnoser::FuzzyDiagnoser(const domain::ProcessNominals& nom) {
  // --- Oil degradation ------------------------------------------------
  {
    std::vector<LinguisticVariable> in;
    in.push_back(make_low_normal_high(kOilTemp, 20.0,
                                      nom.oil_temperature_c - 8.0,
                                      nom.oil_temperature_c + 10.0, 110.0));
    in.push_back(make_low_normal_high(kOilPressure, 80.0,
                                      nom.oil_pressure_kpa - 60.0,
                                      nom.oil_pressure_kpa + 60.0, 450.0));
    in.push_back(make_low_normal_high(kBearingTemp, 20.0,
                                      nom.bearing_temp_c - 8.0,
                                      nom.bearing_temp_c + 8.0, 120.0));
    MamdaniEngine e(std::move(in), severity_output());
    e.add_rule({{{kOilTemp, "high"}, {kOilPressure, "low"}}, "extreme"});
    e.add_rule({{{kOilTemp, "high"}, {kOilPressure, "normal"}}, "serious"});
    e.add_rule({{{kOilTemp, "high"}, {kBearingTemp, "high"}}, "serious"});
    e.add_rule({{{kOilPressure, "low"}}, "slight", 0.8});
    e.add_rule({{{kOilTemp, "high"}}, "slight", 0.8});
    e.add_rule({{{kOilTemp, "normal"}, {kOilPressure, "normal"}}, "none"});
    engines_.push_back({FailureMode::OilDegradation, std::move(e),
                        "Replace oil charge and filter; sample for analysis."});
  }

  // --- Refrigerant leak / undercharge ----------------------------------
  {
    std::vector<LinguisticVariable> in;
    in.push_back(make_low_normal_high(kEvapPressure, 200.0,
                                      nom.evap_pressure_kpa - 45.0,
                                      nom.evap_pressure_kpa + 45.0, 520.0));
    in.push_back(make_low_normal_high(kSuperheat, 0.0, nom.superheat_c - 2.0,
                                      nom.superheat_c + 3.5, 25.0));
    in.push_back(make_low_normal_high(kChwSupplyTemp, 2.0,
                                      nom.chilled_water_supply_c - 1.5,
                                      nom.chilled_water_supply_c + 2.0, 18.0));
    MamdaniEngine e(std::move(in), severity_output());
    e.add_rule({{{kEvapPressure, "low"}, {kSuperheat, "high"},
                 {kChwSupplyTemp, "high"}},
                "extreme"});
    e.add_rule({{{kEvapPressure, "low"}, {kSuperheat, "high"}}, "serious"});
    e.add_rule({{{kEvapPressure, "low"}}, "slight", 0.9});
    e.add_rule({{{kSuperheat, "high"}}, "slight", 0.7});
    e.add_rule({{{kEvapPressure, "normal"}, {kSuperheat, "normal"}}, "none"});
    engines_.push_back({FailureMode::RefrigerantLeak, std::move(e),
                        "Leak-test charge circuit; weigh in refrigerant."});
  }

  // --- Condenser fouling -----------------------------------------------
  {
    std::vector<LinguisticVariable> in;
    in.push_back(make_low_normal_high(kCondPressure, 700.0,
                                      nom.cond_pressure_kpa - 110.0,
                                      nom.cond_pressure_kpa + 110.0, 1600.0));
    in.push_back(make_low_normal_high(kCondApproach, 0.0, 3.0, 7.0, 20.0));
    in.push_back(make_low_normal_high(kMotorCurrent, 60.0,
                                      nom.motor_current_a * 0.9,
                                      nom.motor_current_a * 1.06, 280.0));
    MamdaniEngine e(std::move(in), severity_output());
    e.add_rule({{{kCondPressure, "high"}, {kCondApproach, "high"}}, "extreme"});
    e.add_rule({{{kCondPressure, "high"}, {kMotorCurrent, "high"}}, "serious"});
    e.add_rule({{{kCondApproach, "high"}}, "slight", 0.9});
    e.add_rule({{{kCondPressure, "high"}}, "slight", 0.8});
    e.add_rule(
        {{{kCondPressure, "normal"}, {kCondApproach, "normal"}}, "none"});
    engines_.push_back({FailureMode::CondenserFouling, std::move(e),
                        "Brush condenser tubes; verify water flow."});
  }

  // --- Stator winding fault (thermal/electrical signature) -------------
  {
    std::vector<LinguisticVariable> in;
    in.push_back(make_low_normal_high(kWindingTemp, 30.0,
                                      nom.motor_winding_temp_c - 15.0,
                                      nom.motor_winding_temp_c + 15.0, 180.0));
    in.push_back(make_low_normal_high(kMotorCurrent, 60.0,
                                      nom.motor_current_a * 0.9,
                                      nom.motor_current_a * 1.08, 280.0));
    in.push_back(make_low_normal_high(kLoad, 0.0, 0.3, 0.85, 1.2));
    MamdaniEngine e(std::move(in), severity_output());
    // Hot windings at modest load are the suspicious case; at full load
    // some temperature rise is expected (fuzzy version of rule gating).
    e.add_rule({{{kWindingTemp, "high"}, {kLoad, "normal"}}, "serious"});
    e.add_rule({{{kWindingTemp, "high"}, {kLoad, "low"}}, "extreme"});
    e.add_rule({{{kWindingTemp, "high"}, {kMotorCurrent, "high"},
                 {kLoad, "high"}},
                "slight"});
    e.add_rule({{{kWindingTemp, "high"}, {kLoad, "high"}}, "slight", 0.6});
    e.add_rule({{{kWindingTemp, "normal"}}, "none"});
    engines_.push_back({FailureMode::StatorWindingFault, std::move(e),
                        "Megger stator windings; check phase balance."});
  }

  // --- Pump cavitation (process side: depressed suction) ---------------
  {
    std::vector<LinguisticVariable> in;
    in.push_back(make_low_normal_high(kEvapPressure, 200.0,
                                      nom.evap_pressure_kpa - 45.0,
                                      nom.evap_pressure_kpa + 45.0, 520.0));
    in.push_back(make_low_normal_high(kLoad, 0.0, 0.3, 0.85, 1.2));
    in.push_back(make_low_normal_high(kSuperheat, 0.0, nom.superheat_c - 2.0,
                                      nom.superheat_c + 3.5, 25.0));
    MamdaniEngine e(std::move(in), severity_output());
    // High superheat with low suction pressure points at undercharge, not
    // cavitation (cavitation needs liquid at the eye), so the cavitation
    // rules insist on normal superheat.
    e.add_rule({{{kEvapPressure, "low"}, {kLoad, "high"},
                 {kSuperheat, "normal"}},
                "serious"});
    e.add_rule(
        {{{kEvapPressure, "low"}, {kSuperheat, "normal"}}, "slight", 0.8});
    e.add_rule({{{kEvapPressure, "normal"}}, "none"});
    e.add_rule({{{kSuperheat, "high"}}, "none", 0.8});
    engines_.push_back({FailureMode::PumpCavitation, std::move(e),
                        "Verify suction conditions; vent water boxes."});
  }

  // --- Compressor bearing wear (thermal signature only) -----------------
  {
    std::vector<LinguisticVariable> in;
    in.push_back(make_low_normal_high(kBearingTemp, 20.0,
                                      nom.bearing_temp_c - 8.0,
                                      nom.bearing_temp_c + 8.0, 120.0));
    in.push_back(make_low_normal_high(kOilTemp, 20.0,
                                      nom.oil_temperature_c - 8.0,
                                      nom.oil_temperature_c + 10.0, 110.0));
    in.push_back(make_low_normal_high(kLoad, 0.0, 0.3, 0.85, 1.2));
    MamdaniEngine e(std::move(in), severity_output());
    // Thermal evidence alone cannot say *which* bearing is distressed, so
    // this engine stays deliberately conservative; the vibration expert
    // system owns the strong call via the high-speed-shaft envelope tones.
    e.add_rule({{{kBearingTemp, "high"}, {kLoad, "low"}}, "serious"});
    e.add_rule({{{kBearingTemp, "high"}, {kOilTemp, "normal"}}, "slight"});
    e.add_rule({{{kBearingTemp, "high"}}, "slight", 0.6});
    e.add_rule({{{kBearingTemp, "normal"}}, "none"});
    engines_.push_back({FailureMode::CompressorBearingWear, std::move(e),
                        "Pull oil sample; inspect high-speed bearings."});
  }
}

std::vector<rules::Diagnosis> FuzzyDiagnoser::evaluate(
    const ProcessSnapshot& snapshot,
    const rules::BelievabilityTable& beliefs) const {
  std::vector<rules::Diagnosis> out;
  for (const ModeEngine& me : engines_) {
    CrispInputs inputs;
    bool complete = true;
    // Feed exactly the variables this engine declares; a missing sensor
    // means the engine abstains (fragmentary input, §5.1).
    for (const auto& rule : me.engine.rules()) {
      for (const auto& a : rule.antecedents) {
        const auto it = snapshot.find(a.variable);
        if (it == snapshot.end()) {
          complete = false;
          break;
        }
        inputs[a.variable] = it->second;
      }
      if (!complete) break;
    }
    if (!complete) continue;

    const double severity = me.engine.infer(inputs);
    if (severity < kFireThreshold) continue;

    rules::Diagnosis d;
    d.mode = me.mode;
    d.severity = severity;
    d.gradient = rules::gradient_of(severity);
    d.belief = beliefs.belief(me.mode);
    d.explanation = std::string("fuzzy process-variable inference for ") +
                    domain::condition_text(me.mode);
    d.recommendation = me.recommendation;
    d.prognosis = rules::default_prognosis(severity);
    out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(),
            [](const rules::Diagnosis& a, const rules::Diagnosis& b) {
              return a.severity > b.severity;
            });
  return out;
}

double FuzzyDiagnoser::severity(domain::FailureMode mode,
                                const ProcessSnapshot& snapshot) const {
  for (const ModeEngine& me : engines_) {
    if (me.mode != mode) continue;
    CrispInputs inputs;
    for (const auto& rule : me.engine.rules()) {
      for (const auto& a : rule.antecedents) {
        const auto it = snapshot.find(a.variable);
        MPROS_EXPECTS(it != snapshot.end());
        inputs[a.variable] = it->second;
      }
    }
    return me.engine.infer(inputs);
  }
  return 0.0;
}

std::vector<domain::FailureMode> FuzzyDiagnoser::covered_modes() const {
  std::vector<domain::FailureMode> modes;
  modes.reserve(engines_.size());
  for (const ModeEngine& me : engines_) modes.push_back(me.mode);
  return modes;
}

}  // namespace mpros::fuzzy
