#include "mpros/fusion/dempster_shafer.hpp"

#include <cmath>

#include "mpros/common/assert.hpp"

namespace mpros::fusion {

FrameOfDiscernment::FrameOfDiscernment(std::vector<std::string> hypotheses)
    : names_(std::move(hypotheses)) {
  MPROS_EXPECTS(!names_.empty() && names_.size() <= 16);
}

const std::string& FrameOfDiscernment::name(std::size_t i) const {
  MPROS_EXPECTS(i < names_.size());
  return names_[i];
}

HypothesisSet FrameOfDiscernment::singleton(std::size_t i) const {
  MPROS_EXPECTS(i < names_.size());
  return static_cast<HypothesisSet>(1u << i);
}

HypothesisSet FrameOfDiscernment::theta() const {
  return static_cast<HypothesisSet>((1u << names_.size()) - 1u);
}

std::string FrameOfDiscernment::describe(HypothesisSet s) const {
  if (s == theta()) return "Θ";
  std::string out;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (s & (1u << i)) {
      if (!out.empty()) out += "|";
      out += names_[i];
    }
  }
  return out.empty() ? "∅" : out;
}

MassFunction::MassFunction(const FrameOfDiscernment& frame) : frame_(&frame) {}

MassFunction MassFunction::vacuous(const FrameOfDiscernment& frame) {
  MassFunction m(frame);
  m.masses_[frame.theta()] = 1.0;
  return m;
}

MassFunction MassFunction::simple_support(const FrameOfDiscernment& frame,
                                          HypothesisSet focus, double belief) {
  MPROS_EXPECTS(focus != 0 && (focus & ~frame.theta()) == 0);
  MPROS_EXPECTS(belief >= 0.0 && belief <= 1.0);
  MassFunction m(frame);
  if (belief > 0.0) m.masses_[focus] += belief;
  if (belief < 1.0 || focus == frame.theta()) {
    m.masses_[frame.theta()] += 1.0 - belief;
  }
  return m;
}

double MassFunction::mass(HypothesisSet s) const {
  const auto it = masses_.find(s);
  return it == masses_.end() ? 0.0 : it->second;
}

double MassFunction::belief(HypothesisSet s) const {
  double sum = 0.0;
  for (const auto& [set, m] : masses_) {
    if (set != 0 && (set & ~s) == 0) sum += m;
  }
  return sum;
}

double MassFunction::plausibility(HypothesisSet s) const {
  double sum = 0.0;
  for (const auto& [set, m] : masses_) {
    if ((set & s) != 0) sum += m;
  }
  return sum;
}

double MassFunction::unknown() const { return mass(frame_->theta()); }

CombinationResult combine(const MassFunction& a, const MassFunction& b) {
  MPROS_EXPECTS(a.frame_ == b.frame_);

  MassFunction fused(*a.frame_);
  double conflict = 0.0;
  for (const auto& [sa, ma] : a.masses_) {
    for (const auto& [sb, mb] : b.masses_) {
      const HypothesisSet inter = sa & sb;
      const double product = ma * mb;
      if (inter == 0) {
        conflict += product;
      } else {
        fused.masses_[inter] += product;
      }
    }
  }

  if (conflict >= 1.0 - 1e-12) {
    // Total contradiction: Dempster's rule is undefined; fall back to
    // ignorance and report K = 1 so the caller can flag the sources.
    return CombinationResult{MassFunction::vacuous(*a.frame_), 1.0};
  }

  const double norm = 1.0 / (1.0 - conflict);
  for (auto& [set, m] : fused.masses_) m *= norm;
  return CombinationResult{std::move(fused), conflict};
}

}  // namespace mpros::fusion
