# Empty dependencies file for bench_daq.
# This may be replaced when dependencies are built.
