#include "mpros/dsp/plan_cache.hpp"

#include <mutex>

#include "mpros/telemetry/metrics.hpp"

namespace mpros::dsp {
namespace {

telemetry::Counter& plan_hits() {
  static telemetry::Counter& c =
      telemetry::Registry::instance().counter("dsp.plan_cache_hit");
  return c;
}

telemetry::Counter& plan_misses() {
  static telemetry::Counter& c =
      telemetry::Registry::instance().counter("dsp.plan_cache_miss");
  return c;
}

telemetry::Counter& window_hits() {
  static telemetry::Counter& c =
      telemetry::Registry::instance().counter("dsp.window_cache_hit");
  return c;
}

telemetry::Counter& window_misses() {
  static telemetry::Counter& c =
      telemetry::Registry::instance().counter("dsp.window_cache_miss");
  return c;
}

/// Shared-lock probe, upgrade to exclusive only on miss. `build` runs
/// outside any lock contention concern (under the exclusive lock) but only
/// for the first requester of a key.
template <typename Map, typename Build>
const typename Map::mapped_type::element_type& lookup_or_build(
    std::shared_mutex& mu, Map& map, const typename Map::key_type& key,
    telemetry::Counter& hits, telemetry::Counter& misses,
    const Build& build) {
  {
    std::shared_lock lock(mu);
    const auto it = map.find(key);
    if (it != map.end()) {
      hits.inc();
      return *it->second;
    }
  }
  std::unique_lock lock(mu);
  auto [it, inserted] = map.try_emplace(key);
  if (inserted) {
    misses.inc();
    it->second = build();
  } else {
    hits.inc();  // another thread built it while we waited for the lock
  }
  return *it->second;
}

}  // namespace

PlanCache& PlanCache::instance() {
  static PlanCache cache;
  return cache;
}

const FftPlan& PlanCache::complex_plan(std::size_t n) {
  return lookup_or_build(mu_, complex_, n, plan_hits(), plan_misses(),
                         [n] { return std::make_unique<FftPlan>(n); });
}

const RealFftPlan& PlanCache::real_plan(std::size_t n) {
  return lookup_or_build(mu_, real_, n, plan_hits(), plan_misses(),
                         [n] { return std::make_unique<RealFftPlan>(n); });
}

std::size_t PlanCache::size() const {
  std::shared_lock lock(mu_);
  return complex_.size() + real_.size();
}

WindowCache& WindowCache::instance() {
  static WindowCache cache;
  return cache;
}

const CachedWindow& WindowCache::get(WindowKind kind, std::size_t n) {
  return lookup_or_build(mu_, windows_, Key{kind, n}, window_hits(),
                         window_misses(), [kind, n] {
                           auto w = std::make_unique<CachedWindow>();
                           w->coeffs = make_window(kind, n);
                           w->coherent_gain = coherent_gain(w->coeffs);
                           w->power_gain = power_gain(w->coeffs);
                           return w;
                         });
}

std::size_t WindowCache::size() const {
  std::shared_lock lock(mu_);
  return windows_.size();
}

}  // namespace mpros::dsp
