#include "mpros/mpros/ship_system.hpp"

#include <cmath>
#include <mutex>

#include "mpros/common/assert.hpp"
#include "mpros/common/log.hpp"
#include "mpros/pdme/health.hpp"

namespace mpros {

namespace {

/// Durability mirror tables (alongside the journal's three oosm_* tables).
constexpr const char* kShipMetaTable = "ship_meta";
constexpr const char* kDcConfigTable = "dc_config";
constexpr const char* kDcHealthTable = "pdme_dc_health";
/// ship_meta primary key of the committed-through clock row.
constexpr std::int64_t kCommittedThroughKey = 1;

}  // namespace

ShipSystem::ShipSystem(ShipSystemConfig cfg)
    : cfg_(cfg), network_(cfg.network), pool_(cfg.worker_threads) {
  MPROS_EXPECTS(cfg.plant_count >= 1);

  if (cfg_.enable_durability) {
    MPROS_EXPECTS(!cfg_.durability.directory.empty());
    // Construction IS recovery: whatever the last crash left committed in
    // the directory is rebuilt here (snapshot + WAL replay, torn tail
    // truncated).
    durable_ = std::make_unique<db::DurableDatabase>(cfg_.durability);
    recovered_ =
        durable_->db().has_table(oosm::Persistence::kObjectsTable) &&
        durable_->db().table(oosm::Persistence::kObjectsTable).row_count() > 0;
  }

  const std::size_t decks =
      std::max<std::size_t>(1, (cfg.plant_count + 1) / 2);
  if (recovered_) {
    // The committed tables are the authoritative model; the journal then
    // adopts them and keeps mirroring from here on.
    model_ = oosm::Persistence::load(durable_->db());
    model_journal_ =
        std::make_unique<oosm::DurableModelJournal>(model_, durable_->db());
    // Object ids are deterministic (sequential from 1, fixed build order),
    // so a scratch build of the same hull re-derives the recovered ids
    // without touching — or double-journalling — the live model.
    oosm::ObjectModel scratch;
    ship_ = oosm::build_ship(scratch, "USNS Mercy", decks,
                             /*plants_per_deck=*/2);
    const db::Row* meta =
        durable_->db().table(kShipMetaTable).find(kCommittedThroughKey);
    MPROS_ASSERT(meta != nullptr);  // committed with the oosm tables
    now_ = SimTime((*meta)[2].as_integer());
    MPROS_LOG_INFO("mpros",
                   "recovered durable ship state through %.0f s "
                   "(%llu commits, %llu records replayed)",
                   now_.seconds(),
                   static_cast<unsigned long long>(
                       durable_->recovery().commits_replayed),
                   static_cast<unsigned long long>(
                       durable_->recovery().records_replayed));
  } else {
    if (durable_) {
      // Attach before building so every ship object lands in the journal.
      model_journal_ =
          std::make_unique<oosm::DurableModelJournal>(model_, durable_->db());
    }
    ship_ = oosm::build_ship(model_, "USNS Mercy", decks,
                             /*plants_per_deck=*/2);
  }
  MPROS_EXPECTS(ship_.plants.size() >= cfg.plant_count);
  ship_.plants.resize(cfg.plant_count);

  if (cfg.enable_flight_recorder) {
    recorder_ =
        std::make_unique<telemetry::FlightRecorder>(cfg.recorder_capacity);
    telemetry::RecorderHeader header;
    header.pdme_dedup = cfg.pdme.deduplicate;
    header.plant_count = static_cast<std::uint32_t>(cfg.plant_count);
    header.seed = cfg.seed;
    recorder_->set_header(header);
    // Capture at the delivery point: what the recorder holds is exactly
    // what the endpoints saw, post latency/drop/duplication — the stream a
    // replay must feed a fresh PDME to reproduce this run.
    telemetry::FlightRecorder* rec = recorder_.get();
    network_.set_delivery_tap([rec](const net::Message& msg) {
      rec->record_message(msg.delivered_at.micros(), msg.from, msg.to,
                          msg.payload);
    });
  }

  // The watchdog interval must match the cadence the DCs actually beat.
  if (cfg_.dc_template.heartbeat_period.micros() > 0) {
    const SimTime requested = cfg_.pdme.heartbeat_interval;
    if (requested.micros() != pdme::PdmeConfig{}.heartbeat_interval.micros() &&
        requested.micros() != cfg_.dc_template.heartbeat_period.micros()) {
      MPROS_LOG_WARN("mpros",
                     "pdme.heartbeat_interval %.0f s conflicts with "
                     "dc_template.heartbeat_period %.0f s; using the DC "
                     "period (the watchdog must match the beat cadence)",
                     requested.seconds(),
                     cfg_.dc_template.heartbeat_period.seconds());
    }
    cfg_.pdme.heartbeat_interval = cfg_.dc_template.heartbeat_period;
  }
  pdme_ = std::make_unique<pdme::PdmeExecutive>(model_, cfg_.pdme);
  if (recovered_) {
    // Re-fold every persisted report object in creation order so the fused
    // beliefs match the crashed run's bit for bit.
    pdme_->rebuild_from_model();
  }
  pdme_->attach_to_network(network_);
  if (cfg.enable_fleet_analyzer) {
    resident_ = std::make_unique<pdme::FleetComparativeAnalyzer>(
        *pdme_, cfg.fleet_analyzer);
  }

  if (cfg.use_wnn) {
    wnn_ = train_wnn_classifier(cfg.wnn_training);
  }

  for (std::size_t p = 0; p < cfg.plant_count; ++p) {
    plant::ChillerConfig chiller_cfg;
    chiller_cfg.load_fraction = cfg.initial_load;
    chiller_cfg.seed = splitmix64(cfg.seed ^ (p * 0x9E37));
    plants_.push_back(std::make_unique<plant::ChillerSimulator>(chiller_cfg));

    dc::DcConfig dc_cfg = cfg.dc_template;
    dc_cfg.id = DcId(p + 1);
    const oosm::ChillerPlant& objs = ship_.plants[p];
    dc::MachineRefs refs{objs.chiller, objs.motor, objs.gearbox,
                         objs.compressor};
    // A recovered ship anchors the DC schedules after the committed clock:
    // the plants re-simulate the already-fused interval deterministically
    // (same seeds), but no test may fire inside it and re-mutate the model.
    dcs_.push_back(std::make_unique<dc::DataConcentrator>(
        dc_cfg, refs, *plants_.back(), wnn_,
        /*start_at=*/recovered_ ? now_ : SimTime(0)));
    if (recorder_) dcs_.back()->set_journal(recorder_.get());

    // Each DC listens on the ship's network for §5.8 scheduler commands and
    // PDME acknowledgements (handlers run on the driver thread during
    // advance_to, when the DC's worker is idle).
    dc::DataConcentrator* dc_ptr = dcs_.back().get();
    network_.register_endpoint(
        "dc-" + std::to_string(p + 1),
        [dc_ptr](const net::Message& msg) { dc_ptr->handle_wire(msg); });
    // Register with the watchdog so a DC partitioned before its first
    // datagram is still missed.
    pdme_->expect_dc(DcId(p + 1), SimTime(0));
  }

  if (durable_ && !recovered_) {
    using db::ColumnDef;
    using db::ValueType;
    db::Database& db = durable_->db();
    db.create_table(db::TableSchema{
        kShipMetaTable,
        {ColumnDef{"id", ValueType::Integer, false},
         ColumnDef{"key", ValueType::Text, false},
         ColumnDef{"value", ValueType::Integer, false}}});
    db.insert(kShipMetaTable,
              {db::Value(kCommittedThroughKey),
               db::Value(std::string("committed_through_us")),
               db::Value(std::int64_t{0})});
    db.create_table(db::TableSchema{
        kDcConfigTable,
        {ColumnDef{"id", ValueType::Integer, false},
         ColumnDef{"dc", ValueType::Integer, false},
         ColumnDef{"key", ValueType::Text, false},
         ColumnDef{"value", ValueType::Real, false}}});
    // Keyed by DC id: one watchdog record per concentrator.
    db.create_table(db::TableSchema{
        kDcHealthTable,
        {ColumnDef{"id", ValueType::Integer, false},
         ColumnDef{"liveness", ValueType::Integer, false},
         ColumnDef{"last_heard_us", ValueType::Integer, false},
         ColumnDef{"heartbeats", ValueType::Integer, false}}});
  } else if (recovered_) {
    // dc_config mirror -> each DC's control plane (applied settings and
    // command revision), and the row-key bookkeeping future upserts need.
    std::vector<std::vector<std::pair<std::string, double>>> restored(
        dcs_.size());
    for (const auto& [row_key, row] :
         durable_->db().table(kDcConfigTable).rows()) {
      const auto dc = static_cast<std::size_t>(row[1].as_integer());
      if (dc < 1 || dc > dcs_.size()) continue;  // shrunk fleet; stale row
      restored[dc - 1].emplace_back(row[2].as_text(), row[3].as_real());
      dc_config_rows_.emplace(std::pair{dc - 1, row[2].as_text()}, row_key);
    }
    for (std::size_t i = 0; i < dcs_.size(); ++i) {
      if (restored[i].empty()) continue;
      dcs_[i]->restore_config(restored[i]);
      // The DC rejects command revisions at or below the one it already
      // applied, so the recovered PDME must resume stamping past it.
      for (const auto& [key, value] : restored[i]) {
        if (key == "__revision") {
          pdme_->restore_command_revision(
              DcId(i + 1),
              static_cast<std::uint64_t>(std::llround(value)));
        }
      }
    }
    // pdme_dc_health mirror -> watchdog records (the browser renders
    // last-heard/heartbeats, so the recovered ship must report the values
    // the crashed one had).
    for (const auto& [row_key, row] :
         durable_->db().table(kDcHealthTable).rows()) {
      pdme::DcHealth health;
      health.liveness = static_cast<pdme::DcLiveness>(row[1].as_integer());
      health.last_heard = SimTime(row[2].as_integer());
      health.heartbeats = static_cast<std::uint64_t>(row[3].as_integer());
      pdme_->restore_dc_health(DcId(static_cast<std::uint64_t>(row_key)),
                               health);
    }
  }

  if (cfg_.enable_supervisor) {
    supervisor_ = std::make_unique<dc::DcSupervisor>(cfg_.supervisor);
  }
  step_horizon_ = std::max(SimTime::from_hours(1.0),
                           SimTime(cfg_.supervisor.wedge_timeout.micros() * 2));

  if (cfg_.uplink.enabled) {
    MPROS_EXPECTS(cfg_.uplink.summary_period.micros() > 0);
    MPROS_EXPECTS(cfg_.uplink.heartbeat_period.micros() > 0);
    if (cfg_.uplink.name.empty()) cfg_.uplink.name = model_.name(ship_.ship);
    if (cfg_.uplink.endpoint.empty()) {
      cfg_.uplink.endpoint =
          "hull-" + std::to_string(cfg_.uplink.ship.value());
    }
    uplink_endpoint_ = cfg_.uplink.endpoint;
    // One reliable stream per hull: the sender's DcId slot carries the
    // ShipId value (see fleet_summary.hpp), same sequencing algebra.
    uplink_ = std::make_unique<net::ReliableSender>(
        DcId(cfg_.uplink.ship.value()), cfg_.uplink.reliable);
    next_summary_due_ = cfg_.uplink.summary_period;
    next_heartbeat_due_ = cfg_.uplink.heartbeat_period;
    // A recovered ship already emitted everything due through now_ (the
    // advance loop leaves both dues strictly past the barrier it committed).
    while (next_summary_due_ <= now_) {
      next_summary_due_ += cfg_.uplink.summary_period;
    }
    while (next_heartbeat_due_ <= now_) {
      next_heartbeat_due_ += cfg_.uplink.heartbeat_period;
    }
  }
}

plant::ChillerSimulator& ShipSystem::chiller(std::size_t plant) {
  MPROS_EXPECTS(plant < plants_.size());
  return *plants_[plant];
}

dc::DataConcentrator& ShipSystem::concentrator(std::size_t plant) {
  MPROS_EXPECTS(plant < dcs_.size());
  return *dcs_[plant];
}

const oosm::ChillerPlant& ShipSystem::plant_objects(std::size_t plant) const {
  MPROS_EXPECTS(plant < ship_.plants.size());
  return ship_.plants[plant];
}

std::size_t ShipSystem::advance_to(SimTime t) {
  MPROS_EXPECTS(t >= now_);
  // Record the step boundary: a recovered DC replays exactly this grid.
  step_log_.push_back(t);
  while (!step_log_.empty() && step_log_.front() + step_horizon_ < t) {
    step_log_.pop_front();
  }

  // Fan the DC duty cycles out across the pool; each DC touches only its
  // own chiller and database, and the network's send() is thread-safe.
  std::vector<std::vector<net::FailureReport>> per_dc(dcs_.size());
  pool_.parallel_for(dcs_.size(), [&](std::size_t i) {
    per_dc[i] = dcs_[i]->advance_to(t);
  });

  // Supervised recovery: a DC whose progress tick froze gets torn down,
  // rebuilt from its salvage and caught up (restart_dc_to flushes each
  // catch-up slice itself) before the regular flush below.
  if (supervisor_) {
    for (std::size_t i = 0; i < dcs_.size(); ++i) {
      if (!supervisor_->observe(DcId(i + 1), dcs_[i]->progress(), t)) {
        continue;
      }
      restart_dc_to(i, t);
      supervisor_->notify_restarted(DcId(i + 1), dcs_[i]->progress(), t);
    }
  }

  // Serialize and send on the driver thread in DC order so the wire
  // schedule is deterministic; the transport then adds latency/jitter.
  for (std::size_t i = 0; i < per_dc.size(); ++i) {
    flush_dc(i, per_dc[i]);
  }

  now_ = t;
  const std::size_t delivered = network_.advance_to(now_);
  // Sharded PDME: drain the fusion workers and apply deferred OOSM posts /
  // retest commands before anything reads fused state (no-op inline).
  pdme_->synchronize();
  pdme_->update_liveness(now_);
  // Control plane: retransmit unacked commands whose backoff timer expired.
  pdme_->sweep_commands(now_);
  if (resident_) {
    resident_->scan(now_);
    // Resident conclusions enter fusion directly (no wire hop needed);
    // flush them through the shards within the same step.
    pdme_->synchronize();
  }

  // Fleet tier: at the aggregation barrier everything fused through `now_`
  // is visible, so this is the moment the shore digest is honest. Seal one
  // summary per elapsed cadence boundary, sweep the retransmit window, and
  // beat the uplink heartbeat.
  if (uplink_) {
    while (now_ >= next_summary_due_) {
      uplink_outbox_.push_back(
          {uplink_->envelope(fleet_summary(now_), now_), now_});
      next_summary_due_ += cfg_.uplink.summary_period;
    }
    for (std::vector<std::uint8_t>& payload : uplink_->due_retransmits(now_)) {
      uplink_outbox_.push_back({std::move(payload), now_});
    }
    while (now_ >= next_heartbeat_due_) {
      const net::HeartbeatMessage hb{DcId(cfg_.uplink.ship.value()),
                                     next_heartbeat_due_,
                                     uplink_->last_sequence()};
      uplink_outbox_.push_back({net::wrap(hb), next_heartbeat_due_});
      next_heartbeat_due_ += cfg_.uplink.heartbeat_period;
    }
  }

  // Durability barrier: everything the window changed — model events (the
  // journal already buffered those as they happened), DC config deltas,
  // watchdog records, the committed-through clock — becomes one WAL commit
  // with one fsync. A crash anywhere before the next barrier rolls back to
  // exactly this state.
  if (durable_) durable_commit(now_);
  return delivered;
}

void ShipSystem::mirror_dc_setting(std::size_t i, const std::string& key,
                                   double value) {
  db::Database& db = durable_->db();
  const auto map_key = std::pair{i, key};
  const auto it = dc_config_rows_.find(map_key);
  if (it == dc_config_rows_.end()) {
    const std::int64_t row =
        db.insert_auto(kDcConfigTable,
                       {db::Value(static_cast<std::int64_t>(i + 1)),
                        db::Value(key), db::Value(value)});
    dc_config_rows_.emplace(map_key, row);
    return;
  }
  const db::Row* current = db.table(kDcConfigTable).find(it->second);
  MPROS_ASSERT(current != nullptr);
  if ((*current)[3].as_real() == value) return;  // re-mirror of same value
  db.update(kDcConfigTable, it->second, "value", db::Value(value));
}

void ShipSystem::durable_commit(SimTime t) {
  db::Database& db = durable_->db();
  // Pull, don't push: the DCs persisted these on their worker threads;
  // the mirror write happens here, on the driver, in DC order.
  for (std::size_t i = 0; i < dcs_.size(); ++i) {
    for (const auto& [key, value] : dcs_[i]->drain_config_updates()) {
      mirror_dc_setting(i, key, value);
    }
  }
  const db::Table& health_table = db.table(kDcHealthTable);
  for (const auto& [dc, health] : pdme_->dc_health()) {
    const auto key = static_cast<std::int64_t>(dc);
    const db::Row* row = health_table.find(key);
    if (row == nullptr) {
      db.insert(kDcHealthTable,
                {db::Value(key),
                 db::Value(static_cast<std::int64_t>(health.liveness)),
                 db::Value(health.last_heard.micros()),
                 db::Value(static_cast<std::int64_t>(health.heartbeats))});
      continue;
    }
    // Column-wise delta so a quiet window journals nothing.
    const auto upsert = [&](const char* column, std::size_t idx,
                            std::int64_t value) {
      if ((*row)[idx].as_integer() != value) {
        db.update(kDcHealthTable, key, column, db::Value(value));
      }
    };
    upsert("liveness", 1, static_cast<std::int64_t>(health.liveness));
    upsert("last_heard_us", 2, health.last_heard.micros());
    upsert("heartbeats", 3, static_cast<std::int64_t>(health.heartbeats));
  }
  db.update(kShipMetaTable, kCommittedThroughKey, "value",
            db::Value(t.micros()));
  if (!durable_->commit()) {
    MPROS_LOG_ERROR("mpros",
                    "durable commit failed at %.0f s; state through the "
                    "previous barrier remains recoverable",
                    t.seconds());
  }
}

void ShipSystem::flush_dc(std::size_t i,
                          const std::vector<net::FailureReport>& reports) {
  const std::string endpoint = "dc-" + std::to_string(i + 1);
  dc::DataConcentrator& dc = *dcs_[i];
  const bool reliable = dc.reliable_delivery();
  if (dc.batch_reports() && !reports.empty()) {
    // The whole sync window rides one ReportBatch datagram — in reliable
    // mode sealed under a single sequence number, so the retransmit window
    // and ack traffic scale with flushes, not reports.
    const std::span<const net::FailureReport> window(reports.data(),
                                                     reports.size());
    const SimTime at = reports.back().timestamp;
    network_.send(endpoint, "pdme",
                  reliable ? dc.reliable().envelope(window, at)
                           : net::wrap_batch(DcId(i + 1), window),
                  at);
  } else {
    for (const net::FailureReport& report : reports) {
      // Reliable mode seals each report in a sequence-numbered envelope and
      // buffers it for retransmission until the PDME's cumulative ack.
      network_.send(endpoint, "pdme",
                    reliable ? dc.reliable().envelope(report, report.timestamp)
                             : net::wrap(report),
                    report.timestamp);
    }
  }
  for (const net::SensorDataMessage& batch : dc.drain_sensor_data()) {
    network_.send(endpoint, "pdme", net::wrap(batch), batch.timestamp);
  }
  for (dc::DataConcentrator::WireDatagram& dgram : dc.drain_wire_outbox()) {
    network_.send(endpoint, "pdme", std::move(dgram.payload), dgram.at);
  }
}

void ShipSystem::restart_dc_to(std::size_t i, SimTime t) {
  MPROS_EXPECTS(i < dcs_.size());
  dc::DataConcentrator::Salvage salvage = dcs_[i]->salvage();
  const SimTime resume = salvage.resume_at;

  dc::DcConfig dc_cfg = cfg_.dc_template;
  dc_cfg.id = DcId(i + 1);
  const oosm::ChillerPlant& objs = ship_.plants[i];
  dc::MachineRefs refs{objs.chiller, objs.motor, objs.gearbox,
                       objs.compressor};
  dcs_[i] = std::make_unique<dc::DataConcentrator>(
      dc_cfg, refs, *plants_[i], wnn_, std::move(salvage));
  if (recorder_) {
    dcs_[i]->set_journal(recorder_.get());
    recorder_->record_event(t.micros(), "dc-" + std::to_string(i + 1),
                            "supervised restart (resume from " +
                                std::to_string(resume.seconds()) + " s)");
  }
  // Re-point the endpoint at the replacement (re-registering a name
  // replaces its handler).
  dc::DataConcentrator* dc_ptr = dcs_[i].get();
  network_.register_endpoint(
      "dc-" + std::to_string(i + 1),
      [dc_ptr](const net::Message& msg) { dc_ptr->handle_wire(msg); });

  // Catch up through the recorded assembler steps, flushing per slice:
  // reports seal (entering the retransmit window) at the same step
  // boundaries an unwedged run sealed them, so the sweep/backoff schedule
  // — and therefore the wire — is reproduced exactly.
  for (const SimTime s : step_log_) {
    if (s <= resume || s > t) continue;
    flush_dc(i, dcs_[i]->advance_to(s));
  }

  if (durable_) {
    // The replacement reapplied its persisted config from the salvaged
    // database; re-mirror the full dump (idempotent upserts) so nothing a
    // wedge swallowed between pulls is missing from the durable copy, and
    // drop the replacement's delta queue — the dump already covers it.
    for (const auto& [key, value] : dcs_[i]->persisted_config()) {
      mirror_dc_setting(i, key, value);
    }
    (void)dcs_[i]->drain_config_updates();
  }
}

std::uint64_t ShipSystem::command_dc(
    std::size_t plant, std::vector<std::pair<std::string, double>> settings,
    std::string reason) {
  MPROS_EXPECTS(plant < dcs_.size());
  return pdme_->send_command(DcId(plant + 1), std::move(settings),
                             std::move(reason), now_);
}

void ShipSystem::wedge_dc(std::size_t plant, bool wedged) {
  MPROS_EXPECTS(plant < dcs_.size());
  dcs_[plant]->set_wedged(wedged);
}

void ShipSystem::restart_dc(std::size_t plant) {
  MPROS_EXPECTS(plant < dcs_.size());
  restart_dc_to(plant, now_);
  if (supervisor_) {
    supervisor_->notify_restarted(DcId(plant + 1), dcs_[plant]->progress(),
                                  now_);
  }
}

net::FleetSummary ShipSystem::fleet_summary(SimTime at) const {
  net::FleetSummary summary;
  summary.ship = cfg_.uplink.ship;
  summary.ship_name =
      cfg_.uplink.name.empty() ? model_.name(ship_.ship) : cfg_.uplink.name;
  summary.timestamp = at;

  for (const auto& [dc, health] : pdme_->dc_health()) {
    switch (health.liveness) {
      case pdme::DcLiveness::Alive: ++summary.dcs_alive; break;
      case pdme::DcLiveness::Stale: ++summary.dcs_stale; break;
      case pdme::DcLiveness::Lost: ++summary.dcs_lost; break;
    }
  }
  summary.quarantine_active =
      static_cast<std::uint32_t>(pdme_->sensor_faults(true).size());
  summary.quarantine_total = pdme_->stats().sensor_fault_reports;

  const pdme::HealthRollup rollup;
  const std::map<ObjectId, pdme::HealthEntry> health = rollup.compute(*pdme_);
  for (const oosm::ChillerPlant& objs : ship_.plants) {
    for (const ObjectId machine :
         {objs.chiller, objs.motor, objs.gearbox, objs.compressor}) {
      net::MachineHealthSummary m;
      m.machine = machine;
      m.name = model_.name(machine);
      m.klass = domain::to_string(model_.kind(machine));
      const auto it = health.find(machine);
      m.health = it == health.end() ? 1.0 : it->second.rolled;
      const std::vector<pdme::MaintenanceItem> items =
          pdme_->prioritized_list(machine);
      if (!items.empty()) {
        const pdme::MaintenanceItem& top = items.front();
        m.has_diagnosis = true;
        m.top_mode = top.mode;
        m.top_belief = top.fused_belief;
        m.top_severity = top.max_severity;
        m.priority = top.priority;
        m.report_count = static_cast<std::uint32_t>(top.report_count);
        if (top.median_ttf.has_value()) {
          m.has_median_ttf = true;
          m.median_ttf = *top.median_ttf;
        }
      }
      summary.machines.push_back(std::move(m));
    }
  }
  return summary;
}

std::vector<ShipSystem::UplinkDatagram> ShipSystem::drain_uplink() {
  std::vector<UplinkDatagram> out;
  out.swap(uplink_outbox_);
  return out;
}

void ShipSystem::handle_uplink_wire(const net::Message& msg) {
  if (uplink_ == nullptr) return;
  // Shore traffic is as untrusted as any wire: fail-soft decode; a hull
  // accepts the cumulative ack and the shore-side control-plane downlink.
  const auto type = net::try_peek_type(msg.payload);
  if (!type.has_value()) return;
  if (*type == net::MessageType::Ack) {
    const auto ack = net::try_unwrap_ack(msg.payload);
    if (ack.has_value()) uplink_->on_ack(*ack);
    return;
  }
  if (*type == net::MessageType::Command) {
    // Shore downlink: re-issue on the shipboard PDME->DC command stream, so
    // the last hop gets shipboard-local acks/retransmits and a revision
    // stamped by this hull (the shore's fire-and-forget copy needs neither).
    const auto cmd = net::try_unwrap_command(msg.payload);
    if (!cmd.has_value()) return;
    pdme_->send_command(cmd->target, cmd->settings, cmd->reason,
                        msg.delivered_at);
  }
}

std::size_t ShipSystem::run_until(SimTime end, SimTime step) {
  MPROS_EXPECTS(step.micros() > 0);
  std::size_t delivered = 0;
  while (now_ < end) {
    delivered += advance_to(std::min(end, now_ + step));
  }
  return delivered;
}

void ShipSystem::record_maintenance_outcome(std::size_t plant,
                                            domain::FailureMode mode,
                                            bool confirmed) {
  MPROS_EXPECTS(plant < dcs_.size());
  if (confirmed) {
    dcs_[plant]->believability().record_confirmation(mode);
  } else {
    dcs_[plant]->believability().record_reversal(mode);
  }
  // Post-maintenance: the machine gets a clean slate at the PDME.
  const oosm::ChillerPlant& objs = ship_.plants[plant];
  for (const ObjectId machine :
       {objs.chiller, objs.motor, objs.gearbox, objs.compressor}) {
    pdme_->reset_machine(machine);
  }
}

ShipSystem::FleetStats ShipSystem::fleet_stats() const {
  FleetStats stats;
  for (const auto& dc : dcs_) {
    stats.samples_processed += dc->stats().samples_processed;
    stats.reports_emitted += dc->stats().reports_emitted;
  }
  stats.reports_fused = pdme_->stats().reports_accepted;
  stats.network = network_.stats();
  return stats;
}

}  // namespace mpros
